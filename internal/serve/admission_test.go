package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// TestConfigWithDefaults is the table-driven contract for every Config
// field: zero selects the documented default, negatives follow each
// field's documented convention (QueueSize: zero slots; ScoreWorkers:
// serial; MaxN: uncapped; the bounded stores: their defaults), and
// explicit positives pass through untouched.
func TestConfigWithDefaults(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		name string
		in   Config
		want func(t *testing.T, got Config)
	}{
		{"zero selects defaults", Config{}, func(t *testing.T, got Config) {
			if got.Workers != gmp {
				t.Errorf("Workers = %d, want GOMAXPROCS %d", got.Workers, gmp)
			}
			if got.QueueSize != 64 || got.CacheSize != 1024 || got.RunHistory != 256 || got.MaxN != 2048 || got.RetryAfterSeconds != 1 {
				t.Errorf("defaults not applied: %+v", got)
			}
			if len(got.Classes) != len(DefaultClasses()) {
				t.Errorf("Classes = %+v, want DefaultClasses", got.Classes)
			}
		}},
		{"negative queue means zero slots", Config{QueueSize: -5}, func(t *testing.T, got Config) {
			if got.QueueSize != 0 {
				t.Errorf("QueueSize = %d, want 0 (documented: negative = no queue slots)", got.QueueSize)
			}
		}},
		{"positive queue passes through", Config{QueueSize: 7}, func(t *testing.T, got Config) {
			if got.QueueSize != 7 {
				t.Errorf("QueueSize = %d, want 7", got.QueueSize)
			}
		}},
		{"negative workers fall back to GOMAXPROCS", Config{Workers: -3}, func(t *testing.T, got Config) {
			if got.Workers != gmp {
				t.Errorf("Workers = %d, want %d", got.Workers, gmp)
			}
		}},
		{"positive workers pass through", Config{Workers: 5}, func(t *testing.T, got Config) {
			if got.Workers != 5 {
				t.Errorf("Workers = %d, want 5", got.Workers)
			}
		}},
		{"negative score workers mean serial", Config{ScoreWorkers: -1}, func(t *testing.T, got Config) {
			if got.ScoreWorkers != 1 {
				t.Errorf("ScoreWorkers = %d, want 1", got.ScoreWorkers)
			}
		}},
		{"positive score workers pass through", Config{ScoreWorkers: 3}, func(t *testing.T, got Config) {
			if got.ScoreWorkers != 3 {
				t.Errorf("ScoreWorkers = %d, want 3", got.ScoreWorkers)
			}
		}},
		{"negative cache and history select defaults", Config{CacheSize: -1, RunHistory: -9}, func(t *testing.T, got Config) {
			if got.CacheSize != 1024 || got.RunHistory != 256 {
				t.Errorf("CacheSize = %d, RunHistory = %d, want defaults 1024/256", got.CacheSize, got.RunHistory)
			}
		}},
		{"positive cache and history pass through", Config{CacheSize: 2, RunHistory: 3}, func(t *testing.T, got Config) {
			if got.CacheSize != 2 || got.RunHistory != 3 {
				t.Errorf("CacheSize = %d, RunHistory = %d, want 2/3", got.CacheSize, got.RunHistory)
			}
		}},
		{"negative maxn disables the cap", Config{MaxN: -1}, func(t *testing.T, got Config) {
			if got.MaxN != 0 {
				t.Errorf("MaxN = %d, want 0 (uncapped)", got.MaxN)
			}
		}},
		{"positive maxn passes through", Config{MaxN: 100}, func(t *testing.T, got Config) {
			if got.MaxN != 100 {
				t.Errorf("MaxN = %d, want 100", got.MaxN)
			}
		}},
		{"negative retry floor selects default", Config{RetryAfterSeconds: -2}, func(t *testing.T, got Config) {
			if got.RetryAfterSeconds != 1 {
				t.Errorf("RetryAfterSeconds = %d, want 1", got.RetryAfterSeconds)
			}
		}},
		{"positive retry floor passes through", Config{RetryAfterSeconds: 9}, func(t *testing.T, got Config) {
			if got.RetryAfterSeconds != 9 {
				t.Errorf("RetryAfterSeconds = %d, want 9", got.RetryAfterSeconds)
			}
		}},
		{"custom classes pass through", Config{Classes: []Class{{Name: "only", Priority: 0}}}, func(t *testing.T, got Config) {
			if len(got.Classes) != 1 || got.Classes[0].Name != "only" {
				t.Errorf("Classes = %+v, want the custom set", got.Classes)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.want(t, tc.in.withDefaults()) })
	}
}

// TestNegativeQueueSizeBehavesAsDocumented wires a negative QueueSize
// all the way through New: the pool must have zero queue slots, so a
// submission with every worker busy is shed rather than silently
// queued.
func TestNegativeQueueSizeBehavesAsDocumented(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: -1})
	defer s.Close()
	release := make(chan struct{})
	// Spin until the worker goroutine reaches its wait loop and takes
	// the pin: with zero slots a submission needs an idle worker.
	for !s.pool.TrySubmit(func() { <-release }) {
		runtime.Gosched()
	}
	for s.pool.Depth() > 0 {
		runtime.Gosched() // wait for the worker to pick the pin up
	}
	if s.pool.TrySubmit(func() {}) {
		t.Fatal("negative QueueSize must mean zero queue slots: busy worker + no slot must shed")
	}
	close(release)
}

func TestCostModelColdPredictsZero(t *testing.T) {
	m := NewCostModel()
	if got := m.Predict("slrh1", 256); got != 0 {
		t.Fatalf("cold model predicted %v, want 0", got)
	}
	if _, _, w := m.Coefficients("slrh1"); w != 0 {
		t.Fatalf("cold model weight %v, want 0", w)
	}
}

func TestCostModelFitsLine(t *testing.T) {
	m := NewCostModel()
	// cost(n) = 0.01 + 0.001·n, observed repeatedly at three sizes.
	for i := 0; i < 5; i++ {
		for _, n := range []int{64, 256, 1024} {
			m.Observe("slrh2", n, 0.01+0.001*float64(n))
		}
	}
	alpha, beta, w := m.Coefficients("slrh2")
	if w == 0 {
		t.Fatal("model has no weight after observations")
	}
	if math.Abs(alpha-0.01) > 1e-6 || math.Abs(beta-0.001) > 1e-9 {
		t.Fatalf("fit (%v, %v), want (0.01, 0.001)", alpha, beta)
	}
	want := 0.01 + 0.001*512
	if got := m.Predict("slrh2", 512); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Predict(512) = %v, want %v", got, want)
	}
	// Observations are per heuristic: slrh1 stays cold.
	if got := m.Predict("slrh1", 512); got != 0 {
		t.Fatalf("unrelated heuristic predicted %v, want 0", got)
	}
}

func TestCostModelSinglePointExtrapolatesProportionally(t *testing.T) {
	m := NewCostModel()
	m.Observe("slrh1", 256, 0.256)
	if got, want := m.Predict("slrh1", 512), 0.512; math.Abs(got-want) > 1e-9 {
		t.Fatalf("one-point Predict(512) = %v, want %v (pure proportionality)", got, want)
	}
}

func TestCostModelClampsNegativeSlope(t *testing.T) {
	m := NewCostModel()
	// Decreasing cost with size would price huge requests as free.
	m.Observe("slrh3", 64, 1.0)
	m.Observe("slrh3", 1024, 0.1)
	_, beta, _ := m.Coefficients("slrh3")
	if beta < 0 {
		t.Fatalf("beta = %v, want clamped >= 0", beta)
	}
	if got := m.Predict("slrh3", 1<<20); got <= 0 {
		t.Fatalf("Predict after clamp = %v, want positive", got)
	}
}

func TestCostModelTracksDrift(t *testing.T) {
	m := NewCostModel()
	for i := 0; i < 30; i++ {
		m.Observe("slrh1", 256, 0.1)
	}
	for i := 0; i < 30; i++ {
		m.Observe("slrh1", 256, 0.5) // the instance got 5x slower
	}
	if got := m.Predict("slrh1", 256); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("after drift Predict = %v, want ≈ 0.5 (EW update must forget old regime)", got)
	}
}

func TestAdmissionColdAdmitsEverything(t *testing.T) {
	a := NewAdmission(NewCostModel(), 2, 1)
	cls := Class{Name: "interactive", TargetSeconds: 0.001}
	for i := 0; i < 100; i++ {
		if d := a.Decide("slrh1", 1 << 20, cls); !d.Admit {
			t.Fatal("cold model must admit (open cold-start)")
		}
	}
	if got := a.Backlog(); got != 0 {
		t.Fatalf("cold admissions accumulated backlog %v, want 0", got)
	}
}

func TestAdmissionShedsByPredictedCost(t *testing.T) {
	m := NewCostModel()
	m.Observe("slrh1", 256, 10) // one run of |T|=256 costs ~10s
	a := NewAdmission(m, 1, 1)
	cls := Class{Name: "interactive", TargetSeconds: 1}
	d := a.Decide("slrh1", 256, cls)
	if d.Admit {
		t.Fatal("10s predicted vs 1s target must shed")
	}
	if d.Reason != shedCost {
		t.Fatalf("reason = %d, want cost", d.Reason)
	}
	// Excess is ~9s, so the model-derived Retry-After must be ≥ 9 — not
	// the constant floor of 1.
	if d.RetryAfterSeconds < 9 {
		t.Fatalf("Retry-After = %d, want ≥ 9 (model-derived, not the constant)", d.RetryAfterSeconds)
	}

	// A target-less class is never cost-shed.
	if d := a.Decide("slrh1", 256, Class{Name: "best-effort"}); !d.Admit {
		t.Fatal("targetless class must not cost-shed")
	}
	a.Complete(10)
}

func TestAdmissionBacklogAccounting(t *testing.T) {
	m := NewCostModel()
	m.Observe("slrh1", 256, 2)
	a := NewAdmission(m, 2, 1)
	roomy := Class{Name: "batch", TargetSeconds: 100}
	d1 := a.Decide("slrh1", 256, roomy)
	d2 := a.Decide("slrh1", 256, roomy)
	if !d1.Admit || !d2.Admit {
		t.Fatal("roomy target must admit both")
	}
	if got := a.Backlog(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("backlog = %v, want 4", got)
	}
	// With 4s of predicted backlog over 2 workers, a third request sees
	// 2s of wait; a 3s target cannot also fit its own ~2s cost.
	if d := a.Decide("slrh1", 256, Class{Name: "tight", TargetSeconds: 3}); d.Admit {
		t.Fatal("backlog must count against the target")
	}
	a.Complete(d1.Predicted)
	a.Complete(d2.Predicted)
	if got := a.Backlog(); got != 0 {
		t.Fatalf("backlog after completion = %v, want 0", got)
	}
	if r := a.QueueRetry(); r != 1 {
		t.Fatalf("drained QueueRetry = %d, want the floor 1", r)
	}
}

func TestClassFor(t *testing.T) {
	cfg := Config{}.withDefaults()
	cls, err := cfg.classFor("")
	if err != nil || cls.Name != DefaultClassName {
		t.Fatalf("empty class → (%+v, %v), want batch", cls, err)
	}
	cls, err = cfg.classFor("  Interactive ")
	if err != nil || cls.Name != "interactive" {
		t.Fatalf("sloppy spelling → (%+v, %v), want interactive", cls, err)
	}
	if _, err := cfg.classFor("platinum"); err == nil {
		t.Fatal("unknown class must error")
	}
	// A custom set without "batch" falls back to its first class.
	custom := Config{Classes: []Class{{Name: "only", Priority: 0}}}.withDefaults()
	cls, err = custom.classFor("")
	if err != nil || cls.Name != "only" {
		t.Fatalf("custom-set default → (%+v, %v), want only", cls, err)
	}
}

// TestClassSharesCacheKeyAndBytes: the class field steers admission
// only — requests differing solely in class share one cache key, one
// computation, and byte-identical bodies.
func TestClassSharesCacheKeyAndBytes(t *testing.T) {
	a, b := testRequest(), testRequest()
	a.Class, b.Class = "interactive", "best-effort"
	if a.Key() != b.Key() {
		t.Fatal("requests differing only in class must share a cache key")
	}

	s, ts := newTestServer(t, Config{})
	first := postMap(t, ts, mustMarshal(t, a))
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first = %d: %s", first.StatusCode, firstBody)
	}
	second := postMap(t, ts, mustMarshal(t, b))
	secondBody := readBody(t, second)
	if second.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second class should hit the shared entry, got %q", second.Header.Get("X-Cache"))
	}
	if string(firstBody) != string(secondBody) {
		t.Fatal("classes changed response bytes")
	}
	// The machine "class" field of the grid echo is legitimate; the
	// service class name must not appear anywhere.
	if strings.Contains(string(firstBody), "interactive") {
		t.Fatal("canonical echo must not leak the service class into the body")
	}
	var runs uint64
	for _, c := range s.runsTotal {
		runs += c.Value()
	}
	if runs != 1 {
		t.Fatalf("two classes of one scenario executed %d runs, want 1", runs)
	}
}

func TestUnknownClassRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest()
	req.Class = "platinum"
	resp := postMap(t, ts, mustMarshal(t, req))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class = %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestCostShedOverHTTP warms the model through real traffic, then
// provokes a cost shed via a class whose target nothing can meet: the
// 429 must carry a Retry-After and the shed must be attributed to the
// cost reason.
func TestCostShedOverHTTP(t *testing.T) {
	classes := append(DefaultClasses(), Class{Name: "impossible", Priority: 0, TargetSeconds: 1e-9})
	s, ts := newTestServer(t, Config{Workers: 1, Classes: classes})

	warm := testRequest()
	warm.Trace = false
	resp := postMap(t, ts, mustMarshal(t, warm))
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up = %d", resp.StatusCode)
	}

	probe := warm
	probe.Seed++ // distinct key: must reach admission, not the cache
	probe.Class = "impossible"
	resp = postMap(t, ts, mustMarshal(t, probe))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("impossible class = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("cost shed missing Retry-After")
	}
	if got := s.shedTotal[shedCost].Value(); got != 1 {
		t.Fatalf("shed_total{cost} = %d, want 1", got)
	}
	// The same scenario in a roomy class is admitted: the shed was the
	// class target, not the scenario.
	probe.Class = "batch"
	resp = postMap(t, ts, mustMarshal(t, probe))
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch class = %d, want 200", resp.StatusCode)
	}
}

// TestPredictionCalibrationMetrics: once the model is warm, every
// executed run records its predicted cost and the predicted/actual
// ratio, so calibration is observable.
func TestPredictionCalibrationMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := testRequest()
	req.Trace = false
	for i := 0; i < 3; i++ {
		req.Seed = uint64(100 + i)
		resp := postMap(t, ts, mustMarshal(t, req))
		readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d = %d", i, resp.StatusCode)
		}
	}
	h := heuristicIndex("slrh1")
	// The first run found a cold model (predicted 0, unrecorded); the
	// later two must be calibrated.
	if got := s.predRatio[h].Count(); got != 2 {
		t.Fatalf("prediction_ratio count = %d, want 2", got)
	}
	if got := s.predSeconds[h].Count(); got != 2 {
		t.Fatalf("predicted_seconds count = %d, want 2", got)
	}
}

func TestCapacityEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := testRequest()
	req.Trace = false
	for i := 0; i < 2; i++ {
		req.Seed = uint64(200 + i)
		req.N = 48 + 16*i // two sizes pin the slope
		readBody(t, postMap(t, ts, mustMarshal(t, req)))
	}

	resp, err := http.Get(ts.URL + "/v1/capacity")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/capacity = %d: %s", resp.StatusCode, body)
	}
	var rep CapacityReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("capacity report not JSON: %v\n%s", err, body)
	}
	if rep.Workers != 2 || len(rep.Classes) != len(DefaultClasses()) || len(rep.Models) != len(heuristicNames) {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	var slrh1 *ModelReport
	for i := range rep.Models {
		if rep.Models[i].Heuristic == "slrh1" {
			slrh1 = &rep.Models[i]
		}
	}
	if slrh1 == nil || slrh1.Observations == 0 || len(slrh1.Sustainable) == 0 {
		t.Fatalf("slrh1 model not fitted after traffic: %+v", slrh1)
	}
	for _, r := range slrh1.Sustainable {
		if r.CostSeconds <= 0 || r.ReqPerSec <= 0 {
			t.Fatalf("sustainable rate not positive: %+v", r)
		}
	}

	// Focused answer.
	resp, err = http.Get(ts.URL + "/v1/capacity?heuristic=slrh1&n=96&class=interactive")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if err := json.Unmarshal(body, &rep); err != nil || rep.Answer == nil {
		t.Fatalf("focused capacity answer missing: %v %s", err, body)
	}
	if rep.Answer.Heuristic != "slrh1" || rep.Answer.N != 96 || rep.Answer.Class != "interactive" {
		t.Fatalf("answer echoes wrong query: %+v", rep.Answer)
	}
	if rep.Answer.CostSeconds <= 0 || rep.Answer.ReqPerSec <= 0 {
		t.Fatalf("answer lacks positive estimates: %+v", rep.Answer)
	}

	// Bad queries are client errors.
	for _, q := range []string{"?n=banana", "?heuristic=slrh9", "?class=platinum", "?n=-4"} {
		resp, err := http.Get(ts.URL + "/v1/capacity" + q)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("capacity%s = %d, want 400", q, resp.StatusCode)
		}
	}
	_ = s
}

// TestCalibrate warms every heuristic's model offline — the `slrhd
// -capacity` self-report path.
func TestCalibrate(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for _, h := range heuristicNames {
		if _, _, w := s.model.Coefficients(h); w == 0 {
			t.Fatalf("heuristic %s still cold after Calibrate", h)
		}
		if got := s.model.Predict(h, 1024); got <= 0 {
			t.Fatalf("heuristic %s predicts %v after Calibrate, want positive", h, got)
		}
	}
}
