package serve

import (
	"fmt"
	"strings"
)

// Class is one service class: a latency target steering cost-predictive
// admission and a priority band ordering the run queue (0 = most
// urgent). Classes are admission metadata only — they decide whether
// and when a request runs, never what it computes — so every class
// shares one cache entry per canonical request and response bytes are
// identical across classes.
type Class struct {
	Name string `json:"name"`
	// Priority is the pool queue band; lower runs first.
	Priority int `json:"priority"`
	// TargetSeconds is the predicted-completion budget (queue wait plus
	// own cost) a request must fit to be admitted. Zero means no latency
	// target: the class is never cost-shed, only queue-overflow-shed.
	TargetSeconds float64 `json:"target_seconds,omitempty"`
}

// DefaultClassName is the class assumed when a request leaves the
// field empty.
const DefaultClassName = "batch"

// DefaultClasses is the shipped service-class set: interactive traffic
// gets the head of the queue and a tight completion budget, batch is
// the roomy default, best-effort is never cost-shed and yields to
// everything else.
func DefaultClasses() []Class {
	return []Class{
		{Name: "interactive", Priority: 0, TargetSeconds: 2},
		{Name: "batch", Priority: 1, TargetSeconds: 60},
		{Name: "best-effort", Priority: 2, TargetSeconds: 0},
	}
}

// classFor resolves a request's class name against the configured set.
// The empty name selects DefaultClassName (falling back to the first
// configured class if the default name is absent from a custom set).
func (c Config) classFor(name string) (Class, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		name = DefaultClassName
		for _, cls := range c.Classes {
			if cls.Name == name {
				return cls, nil
			}
		}
		return c.Classes[0], nil
	}
	for _, cls := range c.Classes {
		if cls.Name == name {
			return cls, nil
		}
	}
	return Class{}, fmt.Errorf("unknown class %q (want %s)", name, classNames(c.Classes))
}

// classNames renders the configured class names for error messages.
func classNames(classes []Class) string {
	names := make([]string, len(classes))
	for i, cls := range classes {
		names[i] = cls.Name
	}
	return strings.Join(names, ", ")
}

// priorityBands returns the number of pool queue bands the class set
// needs (max priority + 1).
func priorityBands(classes []Class) int {
	bands := 1
	for _, cls := range classes {
		if cls.Priority+1 > bands {
			bands = cls.Priority + 1
		}
	}
	return bands
}
