package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"adhocgrid/internal/core"
	"adhocgrid/internal/trace"
)

// testRequest is a small, fast scenario (|T|=48) exercising an SLRH
// variant with trace capture.
func testRequest() Request {
	return Request{N: 48, Case: "A", Heuristic: "slrh1", Seed: 7, Alpha: 0.5, Beta: 0.3, Trace: true}
}

// newTestServer returns a started service plus its HTTP front end;
// both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postMap POSTs a request body to /v1/map and returns the response.
func postMap(t *testing.T, ts *httptest.Server, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	return resp
}

// readBody drains and closes a response body.
func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close body: %v", err)
		}
	}()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

func mustMarshal(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMapMissThenHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := mustMarshal(t, testRequest())

	miss := postMap(t, ts, body)
	if miss.StatusCode != http.StatusOK {
		t.Fatalf("miss status = %d, body %s", miss.StatusCode, readBody(t, miss))
	}
	if got := miss.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first response X-Cache = %q, want miss", got)
	}
	missRun := miss.Header.Get("X-Run-Id")
	missBody := readBody(t, miss)

	hit := postMap(t, ts, body)
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("hit status = %d", hit.StatusCode)
	}
	if got := hit.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second response X-Cache = %q, want hit", got)
	}
	if got := hit.Header.Get("X-Run-Id"); got != missRun {
		t.Fatalf("cache hit changed run id: %q vs %q", got, missRun)
	}
	hitBody := readBody(t, hit)
	if !bytes.Equal(missBody, hitBody) {
		t.Fatalf("cache hit not byte-identical to miss:\nmiss: %s\nhit:  %s", missBody, hitBody)
	}

	// A cached response must also be byte-identical to recomputation
	// from scratch — the determinism guarantee the cache relies on.
	out, err := Execute(testRequest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, out.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), missBody) {
		t.Fatalf("served bytes differ from direct recomputation:\nserved: %s\ndirect: %s", missBody, buf.Bytes())
	}

	var res Result
	if err := json.Unmarshal(missBody, &res); err != nil {
		t.Fatal(err)
	}
	if !res.VerifyOK || res.Metrics.Mapped != 48 || !res.Metrics.Complete {
		t.Fatalf("unexpected result: %+v", res.Metrics)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postMap(t, ts, mustMarshal(t, testRequest()))
	runID := resp.Header.Get("X-Run-Id")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || runID == "" {
		t.Fatalf("map failed: %d %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}

	tr, err := http.Get(ts.URL + "/v1/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", tr.StatusCode)
	}
	var doc trace.Document
	if err := json.Unmarshal(readBody(t, tr), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Snapshots) != res.Steps {
		t.Fatalf("trace has %d snapshots, run took %d timesteps", len(doc.Snapshots), res.Steps)
	}
	if len(doc.Assignments) != res.Metrics.Mapped {
		t.Fatalf("trace has %d assignments, %d mapped", len(doc.Assignments), res.Metrics.Mapped)
	}

	missing, err := http.Get(ts.URL + "/v1/runs/r99999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run id status = %d, want 404", missing.StatusCode)
	}
	readBody(t, missing)
}

func TestNoTraceRequestedMeansNoTraceStored(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest()
	req.Trace = false
	resp := postMap(t, ts, mustMarshal(t, req))
	runID := resp.Header.Get("X-Run-Id")
	readBody(t, resp)
	tr, err := http.Get(ts.URL + "/v1/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, tr)
	if tr.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of an untraced run: status %d, want 404", tr.StatusCode)
	}
}

func TestMapValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxN: 128})
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{`},
		{"unknown field", `{"n": 48, "heurstic": "slrh1"}`},
		{"bad case", `{"n": 48, "case": "D", "heuristic": "slrh1", "alpha": 0.5, "beta": 0.3}`},
		{"bad heuristic", `{"n": 48, "case": "A", "heuristic": "slrh9", "alpha": 0.5, "beta": 0.3}`},
		{"bad weights", `{"n": 48, "case": "A", "heuristic": "slrh1", "alpha": 0.9, "beta": 0.9}`},
		{"negative n", `{"n": -1, "case": "A", "heuristic": "slrh1", "alpha": 0.5, "beta": 0.3}`},
		{"n over cap", `{"n": 4096, "case": "A", "heuristic": "slrh1", "alpha": 0.5, "beta": 0.3}`},
		{"loss on maxmax", `{"n": 48, "case": "A", "heuristic": "maxmax", "alpha": 0.5, "beta": 0.3, "lose": [{"machine":1,"at":100}]}`},
		{"negative deltat", `{"n": 48, "case": "A", "heuristic": "slrh1", "alpha": 0.5, "beta": 0.3, "deltat": -5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postMap(t, ts, []byte(tc.body))
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON with error field: %s", body)
			}
		})
	}
}

func TestCanonicalKey(t *testing.T) {
	base := testRequest()
	sloppy := base
	sloppy.Case, sloppy.Heuristic = " a ", "SLRH1"
	sloppy.DeltaT, sloppy.Horizon = 0, 0 // defaults
	canon := base.Canonical()
	if canon.DeltaT == 0 || canon.Horizon == 0 {
		t.Fatal("canonical form must resolve clock defaults")
	}
	if base.Key() != sloppy.Key() {
		t.Fatal("equivalent requests must share a cache key")
	}
	other := base
	other.Seed++
	if base.Key() == other.Key() {
		t.Fatal("distinct seeds must not share a cache key")
	}
	mm := base
	mm.Heuristic, mm.Lose, mm.Trace = "maxmax", nil, false
	mm2 := mm
	mm2.DeltaT, mm2.Horizon = 999, 999 // meaningless for maxmax
	if mm.Key() != mm2.Key() {
		t.Fatal("maxmax requests must ignore clock parameters in the key")
	}
}

func TestMaxmaxRequestServed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postMap(t, ts, []byte(`{"n": 48, "case": "B", "heuristic": "maxmax", "alpha": 0.5, "beta": 0.3, "trace": true}`))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Request.DeltaT != 0 || res.Request.Horizon != 0 {
		t.Fatalf("maxmax canonical request should zero clock params: %+v", res.Request)
	}
	// Static mapper traces have assignments but no per-timestep snapshots.
	tr, err := http.Get(ts.URL + "/v1/runs/" + resp.Header.Get("X-Run-Id") + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var doc trace.Document
	if err := json.Unmarshal(readBody(t, tr), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Snapshots) != 0 || len(doc.Assignments) == 0 {
		t.Fatalf("maxmax trace: %d snapshots, %d assignments", len(doc.Snapshots), len(doc.Assignments))
	}
}

func TestHealthReadyAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("liveness must hold during drain")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := mustMarshal(t, testRequest())
	readBody(t, postMap(t, ts, body)) // miss
	readBody(t, postMap(t, ts, body)) // hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readBody(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		`# TYPE slrhd_map_requests_total counter`,
		`slrhd_map_requests_total{code="200"} 2`,
		`slrhd_cache_hits_total 1`,
		`slrhd_cache_misses_total 1`,
		`slrhd_cache_entries 1`,
		`slrhd_runs_total{heuristic="slrh1"} 1`,
		`# TYPE slrhd_run_seconds histogram`,
		`slrhd_run_seconds_count{heuristic="slrh1"} 1`,
		`slrhd_heuristic_seconds_count{heuristic="slrh1"} 1`,
		`slrhd_inflight_runs 0`,
		`slrhd_queue_depth 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Histogram buckets must be cumulative and end at +Inf.
	if !strings.Contains(text, `slrhd_run_seconds_bucket{heuristic="slrh1",le="+Inf"} 1`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
}

func TestMapMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/map = %d, want 405", resp.StatusCode)
	}
}

func TestExecuteRejectsBeforeComputing(t *testing.T) {
	req := testRequest()
	req.Case = "Z"
	if _, err := Execute(req, 0); err == nil {
		t.Fatal("Execute must validate the request")
	} else {
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Fatalf("validation failure should be a RequestError, got %T", err)
		}
	}
}

// TestExecuteWorkersByteIdentical: the per-run scoring fan-out must not
// change a single response byte — the result cache and the slrhsim
// parity depend on it. Covers an SLRH run with faults and a maxmax run
// (where the knob is simply ignored).
func TestExecuteWorkersByteIdentical(t *testing.T) {
	reqs := []Request{
		{N: 48, Case: "A", Heuristic: "slrh2", Seed: 11, Alpha: 0.5, Beta: 0.3, Faults: "lose:1@400,rejoin:1@900"},
		{N: 48, Case: "B", Heuristic: "maxmax", Seed: 11, Alpha: 0.5, Beta: 0.3},
	}
	for _, req := range reqs {
		serial, err := Execute(req, 0)
		if err != nil {
			t.Fatalf("%s serial: %v", req.Heuristic, err)
		}
		var want bytes.Buffer
		if err := EncodeResult(&want, serial.Result); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			out, err := ExecuteWorkers(req, 0, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", req.Heuristic, workers, err)
			}
			var got bytes.Buffer
			if err := EncodeResult(&got, out.Result); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%s: workers=%d response differs from serial", req.Heuristic, workers)
			}
		}
	}
}

// TestExecuteArenaByteIdentical: borrowing a pooled arena must not
// change a single response byte, including when the arena is reused
// across different workloads. Requests alternate A, B, A so the third
// run reuses the arena the first one grew — any state residue would
// change the bytes.
func TestExecuteArenaByteIdentical(t *testing.T) {
	reqs := []Request{
		{N: 48, Case: "A", Heuristic: "slrh1", Seed: 11, Alpha: 0.5, Beta: 0.3},
		{N: 96, Case: "B", Heuristic: "slrh3", Seed: 12, Alpha: 0.5, Beta: 0.3},
		{N: 48, Case: "A", Heuristic: "slrh1", Seed: 11, Alpha: 0.5, Beta: 0.3},
		{N: 48, Case: "A", Heuristic: "slrh2", Seed: 11, Alpha: 0.5, Beta: 0.3, Faults: "lose:1@400,rejoin:1@900"},
	}
	ap := core.NewArenaPool()
	for k, req := range reqs {
		plain, err := ExecuteWorkers(req, 0, 0)
		if err != nil {
			t.Fatalf("req %d plain: %v", k, err)
		}
		var want bytes.Buffer
		if err := EncodeResult(&want, plain.Result); err != nil {
			t.Fatal(err)
		}
		out, err := ExecuteArena(req, 0, 0, ap)
		if err != nil {
			t.Fatalf("req %d arena: %v", k, err)
		}
		var got bytes.Buffer
		if err := EncodeResult(&got, out.Result); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("req %d (%s n=%d): arena-backed response differs from plain", k, req.Heuristic, req.N)
		}
	}
}

// TestScoreWorkersDefaults: the config resolver splits GOMAXPROCS
// across run workers, honors explicit values, and maps negative to
// serial.
func TestScoreWorkersDefaults(t *testing.T) {
	got := Config{Workers: 1}.withDefaults()
	if want := runtime.GOMAXPROCS(0); got.ScoreWorkers != want {
		t.Errorf("one run worker: ScoreWorkers = %d, want %d", got.ScoreWorkers, want)
	}
	got = Config{Workers: 2 * runtime.GOMAXPROCS(0)}.withDefaults()
	if got.ScoreWorkers != 1 {
		t.Errorf("saturated: ScoreWorkers = %d, want 1", got.ScoreWorkers)
	}
	if got = (Config{ScoreWorkers: 3}).withDefaults(); got.ScoreWorkers != 3 {
		t.Errorf("explicit: ScoreWorkers = %d, want 3", got.ScoreWorkers)
	}
	if got = (Config{ScoreWorkers: -1}).withDefaults(); got.ScoreWorkers != 1 {
		t.Errorf("negative: ScoreWorkers = %d, want 1 (serial)", got.ScoreWorkers)
	}
}

// TestScoreWorkersGauge: the fan-out is visible on /metrics.
func TestScoreWorkersGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{ScoreWorkers: 5})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	if !strings.Contains(body, "slrhd_score_workers 5") {
		t.Errorf("metrics missing slrhd_score_workers 5:\n%s", body)
	}
}
