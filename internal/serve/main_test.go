package serve

import (
	"os"
	"testing"

	"adhocgrid/internal/leakcheck"
)

// TestMain gates the suite on goroutine hygiene: every worker a test
// spawns — flight leaders, admission reapers, httptest handlers —
// must have exited by the time the suite finishes. This is the
// dynamic counterpart of the ctxflow analyzer's static check.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
