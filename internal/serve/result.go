package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"adhocgrid/internal/core"
	"adhocgrid/internal/fault"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/maxmax"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/sim"
	"adhocgrid/internal/trace"
	"adhocgrid/internal/workload"
)

// WeightsReport echoes the resolved objective weights.
type WeightsReport struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
}

// MetricsReport is the schedule-quality section of a result.
type MetricsReport struct {
	Mapped     int     `json:"mapped"`
	T100       int     `json:"t100"`
	TEC        float64 `json:"tec"`
	AETSeconds float64 `json:"aet_seconds"`
	Objective  float64 `json:"objective"`
	Complete   bool    `json:"complete"`
	MetTau     bool    `json:"met_tau"`
	Feasible   bool    `json:"feasible"`
}

// CycleWindow is a half-open cycle interval [start, end).
type CycleWindow struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// MachineReport is the final per-machine account.
type MachineReport struct {
	ID        int     `json:"id"`
	Class     string  `json:"class"`
	Battery   float64 `json:"battery"`
	Remaining float64 `json:"remaining"`
	Alive     bool    `json:"alive"`
	DeadAt    int64   `json:"dead_at,omitempty"`
	// Downtime lists closed loss-to-rejoin outage windows, oldest first.
	Downtime []CycleWindow `json:"downtime,omitempty"`
}

// Result is the response body of POST /v1/map and, byte for byte, the
// output of `slrhsim -json`. It deliberately carries no wall-clock
// values (no elapsed time, no timestamps): the body must be a pure
// function of the request so cached responses are indistinguishable
// from recomputation. Wall time is reported out of band, via /metrics.
type Result struct {
	// Request is the canonical form of the request that produced this
	// result.
	Request    Request         `json:"request"`
	Weights    WeightsReport   `json:"weights"`
	TauSeconds float64         `json:"tau_seconds"`
	TSE        float64         `json:"tse"`
	Metrics    MetricsReport   `json:"metrics"`
	Steps      int             `json:"steps"`              // heuristic activations (SLRH) or assignments (maxmax)
	Requeued   int             `json:"requeued,omitempty"` // subtasks re-mapped after losses and failures
	// FaultsApplied / FaultsSkipped count fault-plan events that fired and
	// changed the run vs fail events that found nothing in flight.
	FaultsApplied int             `json:"faults_applied,omitempty"`
	FaultsSkipped int             `json:"faults_skipped,omitempty"`
	Machines      []MachineReport `json:"machines"`
	VerifyOK      bool            `json:"verify_ok"`
	Violations    []string        `json:"violations,omitempty"`
}

// Outcome bundles a run's serializable result with its side products:
// the captured trace document (nil unless the request asked for one)
// and the heuristic's wall time, which feeds the latency histograms but
// never the response body.
type Outcome struct {
	Result  *Result
	Trace   *trace.Document
	Elapsed float64 // heuristic wall time, seconds
}

// Execute runs one request to completion serially. The request is
// canonicalized and validated (with the given problem-size cap) first;
// every error is a client error except workload-generation failures,
// which Execute wraps as internal.
func Execute(req Request, maxN int) (*Outcome, error) {
	return ExecuteWorkers(req, maxN, 0)
}

// ExecuteWorkers is Execute with a candidate-scoring fan-out: SLRH runs
// set core.Config.PoolWorkers/ScoreWorkers to scoreWorkers (≤ 1 means
// serial). The parallel scorer is result-transparent (DESIGN.md §14),
// so the response body is byte-identical at every worker count — the
// service's result cache and the `slrhsim -json` parity both survive
// any fan-out.
func ExecuteWorkers(req Request, maxN, scoreWorkers int) (*Outcome, error) {
	return ExecuteArena(req, maxN, scoreWorkers, nil)
}

// ExecuteArena is ExecuteWorkers backed by an arena pool: SLRH runs
// borrow a core.Arena for the duration of the call, so a server in
// steady state schedules without rebuilding runner or state storage.
// The arena is released before returning — everything the Outcome
// carries is copied out of the arena-owned state first — and the
// response bytes are identical with and without a pool (the arena is
// result-transparent; the parity tests pin it). ap may be nil.
func ExecuteArena(req Request, maxN, scoreWorkers int, ap *core.ArenaPool) (*Outcome, error) {
	req = req.Canonical()
	if err := req.Validate(maxN); err != nil {
		return nil, &RequestError{Err: err}
	}
	c, err := req.gridCase()
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	params := workload.DefaultParams(req.N)
	params.EnergyScale = req.EnergyScale
	scn, err := workload.Generate(params, rng.New(req.Seed))
	if err != nil {
		return nil, fmt.Errorf("generate workload: %w", err)
	}
	inst, err := scn.Instantiate(c)
	if err != nil {
		return nil, fmt.Errorf("instantiate case %s: %w", req.Case, err)
	}
	w := sched.NewWeights(req.Alpha, req.Beta)

	var (
		metrics          sched.Metrics
		state            *sched.State
		steps            int
		requeued         int
		applied, skipped int
		plan             *fault.Plan
		elapsed          float64
		rec              *trace.Recorder
	)
	//lint:errdrop Validate already rejected unknown heuristics, so variant cannot fail here
	if variant, isSLRH, _ := req.variant(); isSLRH {
		cfg := core.DefaultConfig(variant, w)
		cfg.DeltaT = req.DeltaT
		cfg.Horizon = req.Horizon
		cfg.PoolWorkers = scoreWorkers
		cfg.ScoreWorkers = scoreWorkers
		if req.Adaptive {
			cfg.Adaptive = core.NewAdaptiveController(w)
		}
		//lint:errdrop Validate already rejected malformed fault specs, so faultPlan cannot fail here
		plan, _ = req.faultPlan()
		if plan != nil && !plan.Empty() {
			cfg.Faults = plan
		}
		if req.Trace {
			rec = trace.NewRecorder(1)
			cfg.Observer = rec.Observe
		}
		var res *core.Result
		if ap != nil {
			a := ap.Get()
			// Released on return: the result assembly below reads the
			// arena-owned state, and nothing escaping this function keeps
			// a reference to it.
			defer ap.Put(a)
			res, err = core.RunArena(inst, cfg, a)
		} else {
			res, err = core.Run(inst, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("run %s: %w", req.Heuristic, err)
		}
		metrics, state = res.Metrics, res.State
		steps, requeued = res.Timesteps, res.Requeued
		applied, skipped = res.FaultsApplied, res.FaultsSkipped
		elapsed = res.Elapsed.Seconds()
	} else {
		res, err := maxmax.Run(inst, maxmax.Config{Weights: w})
		if err != nil {
			return nil, fmt.Errorf("run maxmax: %w", err)
		}
		metrics, state = res.Metrics, res.State
		steps = res.Steps
		elapsed = res.Elapsed.Seconds()
	}

	result := &Result{
		Request:    req,
		Weights:    WeightsReport{Alpha: w.Alpha, Beta: w.Beta, Gamma: w.Gamma},
		TauSeconds: grid.CyclesToSeconds(inst.TauCycles),
		TSE:        inst.Grid.TSE(),
		Metrics: MetricsReport{
			Mapped:     metrics.Mapped,
			T100:       metrics.T100,
			TEC:        metrics.TEC,
			AETSeconds: metrics.AETSeconds,
			Objective:  metrics.Objective,
			Complete:   metrics.Complete,
			MetTau:     metrics.MetTau,
			Feasible:   metrics.Feasible(),
		},
		Steps:         steps,
		Requeued:      requeued,
		FaultsApplied: applied,
		FaultsSkipped: skipped,
		VerifyOK:      true,
	}
	for j := 0; j < inst.Grid.M(); j++ {
		m := MachineReport{
			ID:        j,
			Class:     inst.Grid.Machines[j].Class.String(),
			Battery:   inst.Grid.Machines[j].Battery,
			Remaining: state.Ledger.Remaining(j),
			Alive:     state.Alive(j),
		}
		if !m.Alive {
			m.DeadAt = state.DeadAt(j)
		}
		for _, iv := range state.Downtime(j) {
			m.Downtime = append(m.Downtime, CycleWindow{Start: iv.Start, End: iv.End})
		}
		result.Machines = append(result.Machines, m)
	}
	// VerifyPlan subsumes Verify and additionally cross-checks the run
	// against the requested fault plan (nil for maxmax or no faults).
	for _, v := range sim.VerifyPlan(state, plan) {
		result.VerifyOK = false
		result.Violations = append(result.Violations, v.String())
	}

	out := &Outcome{Result: result, Elapsed: elapsed}
	if req.Trace {
		doc := trace.NewDocument(rec, state)
		out.Trace = &doc
	}
	return out, nil
}

// RequestError marks an error as the client's fault (HTTP 400).
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// EncodeResult writes the canonical serialization of a result: indented
// JSON plus a trailing newline. Both the service and `slrhsim -json`
// emit through this one function, so their bytes agree (the parity
// tests pin it).
func EncodeResult(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
