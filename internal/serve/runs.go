package serve

import "sync"

// RunStore retains the trace documents of recent runs, keyed by run id,
// bounded FIFO like the result cache. Runs executed without trace
// capture are not stored — their ids simply miss.
type RunStore struct {
	mu    sync.Mutex
	max   int
	docs  map[string][]byte // run id -> serialized trace.Document
	order []string
}

// NewRunStore returns a store retaining at most max trace documents
// (max < 1 pins the capacity to 1).
func NewRunStore(max int) *RunStore {
	if max < 1 {
		max = 1
	}
	return &RunStore{max: max, docs: make(map[string][]byte, max)}
}

// Put stores a run's serialized trace document.
func (s *RunStore) Put(runID string, doc []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[runID]; ok {
		s.docs[runID] = doc
		return
	}
	for len(s.docs) >= s.max {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.docs, oldest)
	}
	s.docs[runID] = doc
	s.order = append(s.order, runID)
}

// Get returns the trace document for a run id, if retained.
func (s *RunStore) Get(runID string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.docs[runID]
	return doc, ok
}
