package par_test

import (
	"sync/atomic"
	"testing"

	"adhocgrid/internal/leakcheck"
	"adhocgrid/internal/par"
)

// sqTask writes k*k into its slot — the only-your-own-slot pattern the
// SLRH scorer uses, so pooled and pool-free dispatch must agree.
type sqTask struct{ out []int }

func (t *sqTask) Run(_, k int) { t.out[k] = k * k }

// hitTask counts how many times each index is claimed and records the
// worker ids it sees.
type hitTask struct {
	hits    []atomic.Int32
	workers int32 // pool's worker count, for range checking
	badID   atomic.Int32
}

func (t *hitTask) Run(worker, k int) {
	if worker < 0 || int32(worker) >= t.workers {
		t.badID.Add(1)
	}
	t.hits[k].Add(1)
}

// TestPoolCoversEveryIndexOnce: persistent-worker dispatch claims every
// index exactly once per batch, at every worker count including the
// clamped degenerate ones, with in-range worker ids.
func TestPoolCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 16} {
		p := par.NewPool(workers)
		const n = 57
		task := &hitTask{hits: make([]atomic.Int32, n), workers: int32(p.Workers())}
		p.Map(n, task)
		for k := range task.hits {
			if got := task.hits[k].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, k, got)
			}
		}
		if bad := task.badID.Load(); bad != 0 {
			t.Fatalf("workers=%d: %d out-of-range worker ids", workers, bad)
		}
		p.Close()
	}
}

// TestPoolMatchesMapWorkers: the pool and the spawn-per-call MapWorkers
// produce identical results for slot-writing tasks — same dispatch
// semantics, different goroutine lifecycle.
func TestPoolMatchesMapWorkers(t *testing.T) {
	const n = 1000
	ref := &sqTask{out: make([]int, n)}
	par.MapWorkers(4, n, ref.Run)

	p := par.NewPool(4)
	defer p.Close()
	got := &sqTask{out: make([]int, n)}
	p.Map(n, got)

	for k := range ref.out {
		if ref.out[k] != got.out[k] {
			t.Fatalf("slot %d: MapWorkers %d vs Pool %d", k, ref.out[k], got.out[k])
		}
	}
}

// TestPoolReuseAcrossBatches: one pool serves many batches of varying
// size — including empty — without respawning workers or dropping work.
func TestPoolReuseAcrossBatches(t *testing.T) {
	p := par.NewPool(3)
	defer p.Close()
	for round, n := range []int{5, 0, 1, 400, 7, 0, 64} {
		task := &hitTask{hits: make([]atomic.Int32, n), workers: int32(p.Workers())}
		p.Map(n, task)
		for k := range task.hits {
			if got := task.hits[k].Load(); got != 1 {
				t.Fatalf("round %d (n=%d): index %d processed %d times", round, n, k, got)
			}
		}
	}
}

// TestPoolWorkersClamped: worker counts are clamped to at least one, so
// a misconfigured pool degrades to serial instead of deadlocking.
func TestPoolWorkersClamped(t *testing.T) {
	for _, w := range []int{-5, 0} {
		p := par.NewPool(w)
		if got := p.Workers(); got != 1 {
			t.Errorf("NewPool(%d).Workers() = %d, want 1", w, got)
		}
		p.Close()
	}
	p := par.NewPool(6)
	if got := p.Workers(); got != 6 {
		t.Errorf("NewPool(6).Workers() = %d, want 6", got)
	}
	p.Close()
}

// TestPoolCloseReleasesWorkers: Close must end every worker goroutine —
// the pool is used by arenas inside leak-gated servers, so a lingering
// worker is a real defect, not hygiene.
func TestPoolCloseReleasesWorkers(t *testing.T) {
	p := par.NewPool(8)
	task := &sqTask{out: make([]int, 100)}
	p.Map(len(task.out), task)
	p.Close()
	// Check settles before reporting: Close returns without joining the
	// workers (they exit as soon as the scheduler runs them), so an
	// instantaneous snapshot could catch one mid-exit.
	leakcheck.Check(t)
}
