package par_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"adhocgrid/internal/par"
)

// TestMapCoversEveryIndex: every index is processed exactly once, at
// every worker count including the degenerate ones.
func TestMapCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 16, 100} {
		const n = 57
		var hits [n]atomic.Int32
		par.Map(workers, n, func(k int) { hits[k].Add(1) })
		for k := range hits {
			if got := hits[k].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, k, got)
			}
		}
	}
}

// TestMapZeroN: no tasks, no calls, no hang.
func TestMapZeroN(t *testing.T) {
	called := false
	par.Map(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty index space")
	}
}

// TestMapOutputSlots: concurrent tasks writing only their own slot
// produce the same result as sequential execution (the determinism
// contract the SLRH prefill relies on).
func TestMapOutputSlots(t *testing.T) {
	const n = 1000
	seq := make([]int, n)
	par.Map(1, n, func(k int) { seq[k] = k * k })
	conc := make([]int, n)
	par.Map(8, n, func(k int) { conc[k] = k * k })
	for k := range seq {
		if seq[k] != conc[k] {
			t.Fatalf("slot %d: sequential %d vs concurrent %d", k, seq[k], conc[k])
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := par.Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := par.Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := par.Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}

func TestPerRun(t *testing.T) {
	if got := par.PerRun(8, 2); got != 4 {
		t.Errorf("PerRun(8,2) = %d, want 4", got)
	}
	if got := par.PerRun(2, 8); got != 1 {
		t.Errorf("PerRun(2,8) = %d, want 1 (floor)", got)
	}
	if got := par.PerRun(6, 0); got != 6 {
		t.Errorf("PerRun(6,0) = %d, want 6 (concurrent clamped to 1)", got)
	}
}
