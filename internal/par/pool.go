package par

import "sync/atomic"

// Task is one batch of parallel work: Run processes item k on the given
// worker (the worker index selects per-goroutine scratch, exactly as in
// MapWorkers). Implementations are typically pointers to structs that
// persist across batches, so handing one to Pool.Map converts to the
// interface without allocating.
type Task interface {
	Run(worker, k int)
}

// Pool is a persistent worker set for steady-state fan-out. MapWorkers
// spawns its goroutines per call, which is fine for one-shot use but
// puts goroutine startup and closure allocation on the SLRH per-timestep
// path; a Pool starts its workers once and dispatches every subsequent
// batch over two channel operations per worker.
//
// Determinism contract: identical to MapWorkers — indices are claimed
// from one atomic counter, every index is processed exactly once, and
// each task writes only to its own output slot, so results are
// independent of scheduling order and of the worker count.
//
// A Pool is driven by one goroutine at a time: Map must not be called
// concurrently with itself or with Close.
type Pool struct {
	workers int
	task    Task
	n       int
	next    atomic.Int64
	start   chan struct{}
	done    chan struct{}
}

// NewPool starts `workers` persistent goroutines (minimum 1). Callers
// own the pool's lifecycle and must Close it; the leak-gated suites
// treat an unclosed pool as a goroutine leak.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, start: make(chan struct{}), done: make(chan struct{})}
	for g := 0; g < workers; g++ {
		go p.worker(g)
	}
	return p
}

// Workers returns the pool's worker count (scratch arrays are sized by
// it: any worker may claim any index).
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(id int) {
	for range p.start {
		for {
			k := int(p.next.Add(1)) - 1
			if k >= p.n {
				break
			}
			p.task.Run(id, k)
		}
		p.done <- struct{}{}
	}
}

// Map runs t over every index in [0, n), returning once all are done
// (which orders the tasks' writes before the caller's subsequent reads,
// via the completion channel). n <= 0 is a no-op.
func (p *Pool) Map(n int, t Task) {
	if n <= 0 {
		return
	}
	p.task, p.n = t, n
	p.next.Store(0)
	for g := 0; g < p.workers; g++ {
		p.start <- struct{}{}
	}
	for g := 0; g < p.workers; g++ {
		<-p.done
	}
	p.task = nil
}

// Close stops the workers. Map must not be called after Close; Close
// must not be called twice.
func (p *Pool) Close() {
	close(p.start)
}
