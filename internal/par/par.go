// Package par holds the dependency-free parallel-map primitive shared
// by the experiment harness (internal/exp), the scheduling service
// (internal/serve) and the SLRH core's concurrent candidate scorer
// (internal/core). It lives below all of them so the core can fan out
// without importing the experiment layer (which imports the core).
//
// Determinism contract: Map distributes a fixed index space over a
// bounded worker set, and every task writes only to its own output
// slot, so results are independent of scheduling order. Nothing in
// this package reads the clock or a global RNG.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies fn to every index in [0, n) using at most `workers`
// concurrent goroutines (a non-positive count means sequential). fn
// must write only to its own index's output. It returns after every
// index has been processed, which also orders all of fn's writes
// before the caller's subsequent reads.
func Map(workers, n int, fn func(k int)) {
	MapWorkers(workers, n, func(_, k int) { fn(k) })
}

// MapWorkers is Map with the executing worker's index in [0, workers)
// passed to fn, so a caller can hand each worker a private scratch
// arena. Sequential execution uses worker 0.
func MapWorkers(workers, n int, fn func(worker, k int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(0, k)
		}
		return
	}
	// Atomic-counter dispatch: a channel costs two scheduler handoffs per
	// item, which swamps fine-grained tasks like per-candidate pricing;
	// claiming indices with one atomic add keeps the per-item overhead in
	// the nanoseconds while still balancing uneven task costs.
	var wg sync.WaitGroup
	var next atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(worker, k)
			}
		}(g)
	}
	wg.Wait()
}

// Workers resolves a requested worker count: non-positive selects
// GOMAXPROCS, anything else is returned unchanged.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// PerRun sizes the worker budget of one run when `concurrent` runs
// share the machine: total workers divided evenly, never below 1.
// Non-positive arguments select GOMAXPROCS for `total` and 1 for
// `concurrent`.
func PerRun(total, concurrent int) int {
	total = Workers(total)
	if concurrent < 1 {
		concurrent = 1
	}
	w := total / concurrent
	if w < 1 {
		return 1
	}
	return w
}
