package dag

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the serialized form: subtask count plus an edge list.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"n": N, "edges": [[p,c], ...]} with
// edges in (parent, child) lexicographic order for stable output.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{N: g.n, Edges: make([][2]int, 0, g.Edges())}
	for p := 0; p < g.n; p++ {
		for _, c := range g.children[p] {
			jg.Edges = append(jg.Edges, [2]int{p, c})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph and validates it (including acyclicity).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	if jg.N < 0 {
		return fmt.Errorf("dag: negative subtask count %d", jg.N)
	}
	ng := NewGraph(jg.N)
	for _, e := range jg.Edges {
		if err := ng.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}
