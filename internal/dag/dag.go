// Package dag implements the directed-acyclic-graph substrate used to
// express subtask precedence in the ad hoc grid workload (paper §III).
//
// The paper generated its ten DAGs with the method of Shivle et al.
// [ShC04], whose parameters are not published; this package provides a
// seeded layered random generator with equivalent knobs (see generate.go
// and DESIGN.md substitution D1), plus the structural operations the
// heuristics and validators need: validation, topological order, level
// assignment, critical-path length, and ancestor/descendant queries.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a DAG over subtasks 0..N-1. Edges point parent → child and
// carry the identity of a global data item the parent transmits to the
// child (the item's size in bits lives in the workload layer).
type Graph struct {
	n        int
	parents  [][]int // parents[i] = sorted parent ids of i
	children [][]int // children[i] = sorted child ids of i
}

// NewGraph returns an empty DAG over n subtasks and no edges.
// It panics if n < 0.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("dag: NewGraph with negative n")
	}
	return &Graph{
		n:        n,
		parents:  make([][]int, n),
		children: make([][]int, n),
	}
}

// N returns the number of subtasks.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the precedence edge parent → child. Duplicate edges are
// ignored. It returns an error if either endpoint is out of range or the
// edge is a self-loop. AddEdge does not check acyclicity; call Validate
// after construction.
func (g *Graph) AddEdge(parent, child int) error {
	if parent < 0 || parent >= g.n || child < 0 || child >= g.n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", parent, child, g.n)
	}
	if parent == child {
		return fmt.Errorf("dag: self-loop on %d", parent)
	}
	for _, c := range g.children[parent] {
		if c == child {
			return nil // already present
		}
	}
	g.children[parent] = insertSorted(g.children[parent], child)
	g.parents[child] = insertSorted(g.parents[child], parent)
	return nil
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether parent → child is present.
func (g *Graph) HasEdge(parent, child int) bool {
	if parent < 0 || parent >= g.n || child < 0 || child >= g.n {
		return false
	}
	i := sort.SearchInts(g.children[parent], child)
	return i < len(g.children[parent]) && g.children[parent][i] == child
}

// Parents returns the parents of subtask i. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Parents(i int) []int { return g.parents[i] }

// Children returns the children of subtask i. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Children(i int) []int { return g.children[i] }

// Edges returns the total number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, cs := range g.children {
		total += len(cs)
	}
	return total
}

// Roots returns the subtasks with no parents, in increasing order.
func (g *Graph) Roots() []int {
	var roots []int
	for i := 0; i < g.n; i++ {
		if len(g.parents[i]) == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// Sinks returns the subtasks with no children, in increasing order.
func (g *Graph) Sinks() []int {
	var sinks []int
	for i := 0; i < g.n; i++ {
		if len(g.children[i]) == 0 {
			sinks = append(sinks, i)
		}
	}
	return sinks
}

// ErrCycle is returned by Validate and TopoOrder when the graph contains a
// directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoOrder returns a topological order of the subtasks (Kahn's algorithm,
// ties broken by smallest id for determinism), or ErrCycle.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, g.n)
	for i := 0; i < g.n; i++ {
		indeg[i] = len(g.parents[i])
	}
	// Min-heap by id for deterministic order.
	var ready intHeap
	for i := 0; i < g.n; i++ {
		if indeg[i] == 0 {
			ready.push(i)
		}
	}
	order := make([]int, 0, g.n)
	for ready.len() > 0 {
		v := ready.pop()
		order = append(order, v)
		for _, c := range g.children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				ready.push(c)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity and parent/child
// adjacency consistency.
func (g *Graph) Validate() error {
	for i := 0; i < g.n; i++ {
		for _, c := range g.children[i] {
			if c < 0 || c >= g.n {
				return fmt.Errorf("dag: child %d of %d out of range", c, i)
			}
			if !containsSorted(g.parents[c], i) {
				return fmt.Errorf("dag: edge (%d,%d) missing reverse link", i, c)
			}
		}
		for _, p := range g.parents[i] {
			if !containsSorted(g.children[p], i) {
				return fmt.Errorf("dag: edge (%d,%d) missing forward link", p, i)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// Levels assigns each subtask its depth: roots are level 0 and every other
// subtask is 1 + max(parent levels). Returns ErrCycle on a cyclic graph.
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	levels := make([]int, g.n)
	for _, v := range order {
		lv := 0
		for _, p := range g.parents[v] {
			if levels[p]+1 > lv {
				lv = levels[p] + 1
			}
		}
		levels[v] = lv
	}
	return levels, nil
}

// Depth returns the number of levels (length of the longest chain). An
// empty graph has depth 0.
func (g *Graph) Depth() (int, error) {
	if g.n == 0 {
		return 0, nil
	}
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	maxLv := 0
	for _, lv := range levels {
		if lv > maxLv {
			maxLv = lv
		}
	}
	return maxLv + 1, nil
}

// CriticalPath returns the maximum, over all root-to-sink paths, of the sum
// of weight(i) along the path. Weights are supplied per subtask (e.g. the
// minimum execution time of each subtask); communication is not included.
// Returns ErrCycle on a cyclic graph.
func (g *Graph) CriticalPath(weight func(i int) float64) (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	longest := make([]float64, g.n)
	best := 0.0
	for _, v := range order {
		in := 0.0
		for _, p := range g.parents[v] {
			if longest[p] > in {
				in = longest[p]
			}
		}
		longest[v] = in + weight(v)
		if longest[v] > best {
			best = longest[v]
		}
	}
	return best, nil
}

// Descendants returns the set of subtasks reachable from i (excluding i),
// in increasing order.
func (g *Graph) Descendants(i int) []int {
	seen := make([]bool, g.n)
	stack := append([]int(nil), g.children[i]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, g.children[v]...)
	}
	var out []int
	for v, s := range seen {
		if s {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for i := 0; i < g.n; i++ {
		c.parents[i] = append([]int(nil), g.parents[i]...)
		c.children[i] = append([]int(nil), g.children[i]...)
	}
	return c
}

// intHeap is a minimal min-heap of ints (by value) used by TopoOrder.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.a) && h.a[l] < h.a[smallest] {
			smallest = l
		}
		if r < len(h.a) && h.a[r] < h.a[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}
