package dag

import (
	"testing"

	"adhocgrid/internal/rng"
)

func TestGenerateOutTree(t *testing.T) {
	for _, n := range []int{1, 2, 10, 200} {
		g, err := GenerateOutTree(n, 3, rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if g.Edges() != n-1 {
			t.Fatalf("n=%d: tree has %d edges", n, g.Edges())
		}
		if r := g.Roots(); len(r) != 1 || r[0] != 0 {
			t.Fatalf("n=%d: roots = %v", n, r)
		}
		for i := 0; i < n; i++ {
			if len(g.Parents(i)) > 1 {
				t.Fatalf("n=%d: subtask %d has %d parents in an out-tree", n, i, len(g.Parents(i)))
			}
			if len(g.Children(i)) > 3 {
				t.Fatalf("n=%d: subtask %d exceeds maxChildren", n, i)
			}
		}
	}
	if _, err := GenerateOutTree(0, 3, rng.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestGenerateOutTreeUnboundedChildren(t *testing.T) {
	g, err := GenerateOutTree(50, 0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateInTree(t *testing.T) {
	for _, n := range []int{1, 2, 10, 200} {
		g, err := GenerateInTree(n, 4, rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if g.Edges() != n-1 {
			t.Fatalf("n=%d: in-tree has %d edges", n, g.Edges())
		}
		if s := g.Sinks(); len(s) != 1 || s[0] != n-1 {
			t.Fatalf("n=%d: sinks = %v", n, s)
		}
		for i := 0; i < n; i++ {
			if len(g.Children(i)) > 1 {
				t.Fatalf("n=%d: subtask %d has %d children in an in-tree", n, i, len(g.Children(i)))
			}
			if len(g.Parents(i)) > 4 {
				t.Fatalf("n=%d: subtask %d exceeds maxParents", n, i)
			}
		}
	}
}

func TestGenerateForkJoin(t *testing.T) {
	g, err := GenerateForkJoin(100, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := g.Roots(); len(r) != 1 || r[0] != 0 {
		t.Fatalf("roots = %v", r)
	}
	// Every non-root is connected.
	for i := 1; i < g.N(); i++ {
		if len(g.Parents(i)) == 0 {
			t.Fatalf("subtask %d disconnected", i)
		}
	}
	if _, err := GenerateForkJoin(10, 0, rng.New(1)); err == nil {
		t.Fatal("width=0 accepted")
	}
}

func TestGenerateForkJoinWidthOne(t *testing.T) {
	// Width 1 degenerates to a chain.
	g, err := GenerateForkJoin(10, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("chain depth = %d, want 10", d)
	}
}

func TestTransitiveReduction(t *testing.T) {
	// Triangle 0->1, 1->2, 0->2: the direct 0->2 edge is redundant.
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	red, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if red.Edges() != 2 {
		t.Fatalf("reduction kept %d edges", red.Edges())
	}
	if red.HasEdge(0, 2) {
		t.Fatal("redundant edge survived")
	}
	if !red.HasEdge(0, 1) || !red.HasEdge(1, 2) {
		t.Fatal("necessary edges removed")
	}
}

func TestTransitiveReductionPreservesReachability(t *testing.T) {
	g, err := Generate(DefaultGenParams(128), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	red, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if red.Edges() > g.Edges() {
		t.Fatal("reduction added edges")
	}
	// Reachability sets must be identical.
	for i := 0; i < g.N(); i++ {
		a, b := g.Descendants(i), red.Descendants(i)
		if len(a) != len(b) {
			t.Fatalf("subtask %d: %d vs %d descendants", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("subtask %d: descendant sets differ", i)
			}
		}
	}
}

func TestTransitiveReductionIdempotent(t *testing.T) {
	g, err := Generate(DefaultGenParams(64), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TransitiveReduction(r1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Edges() != r2.Edges() {
		t.Fatalf("reduction not idempotent: %d vs %d edges", r1.Edges(), r2.Edges())
	}
}
