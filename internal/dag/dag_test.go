package dag

import (
	"encoding/json"
	"testing"

	"adhocgrid/internal/rng"
)

func mustDiamond(t *testing.T) *Graph {
	t.Helper()
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
	g := NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := mustDiamond(t)
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Edges() != 4 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if got := g.Parents(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Parents(3) = %v", got)
	}
	if got := g.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Children(0) = %v", got)
	}
}

func TestAddEdgeDuplicateIgnored(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Fatalf("duplicate edge stored: %d edges", g.Edges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative parent accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range child accepted")
	}
}

func TestRootsSinks(t *testing.T) {
	g := mustDiamond(t)
	if r := g.Roots(); len(r) != 1 || r[0] != 0 {
		t.Fatalf("Roots = %v", r)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks = %v", s)
	}
}

func TestTopoOrder(t *testing.T) {
	g := mustDiamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for p := 0; p < g.N(); p++ {
		for _, c := range g.Children(p) {
			if pos[p] >= pos[c] {
				t.Fatalf("topo order violates edge (%d,%d): %v", p, c, order)
			}
		}
	}
	// Deterministic tie-break: 0,1,2,3 for the diamond.
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("TopoOrder err = %v, want ErrCycle", err)
	}
	if err := g.Validate(); err != ErrCycle {
		t.Fatalf("Validate err = %v, want ErrCycle", err)
	}
}

func TestLevelsAndDepth(t *testing.T) {
	g := mustDiamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("Levels = %v, want %v", levels, want)
		}
	}
	d, err := g.Depth()
	if err != nil || d != 3 {
		t.Fatalf("Depth = %d, %v", d, err)
	}
	empty := NewGraph(0)
	if d, err := empty.Depth(); err != nil || d != 0 {
		t.Fatalf("empty Depth = %d, %v", d, err)
	}
}

func TestCriticalPath(t *testing.T) {
	g := mustDiamond(t)
	weights := []float64{1, 10, 2, 5}
	cp, err := g.CriticalPath(func(i int) float64 { return weights[i] })
	if err != nil {
		t.Fatal(err)
	}
	if cp != 16 { // 0 -> 1 -> 3 = 1+10+5
		t.Fatalf("CriticalPath = %v, want 16", cp)
	}
}

func TestDescendants(t *testing.T) {
	g := mustDiamond(t)
	d := g.Descendants(0)
	if len(d) != 3 || d[0] != 1 || d[1] != 2 || d[2] != 3 {
		t.Fatalf("Descendants(0) = %v", d)
	}
	if d := g.Descendants(3); len(d) != 0 {
		t.Fatalf("Descendants(3) = %v", d)
	}
}

func TestClone(t *testing.T) {
	g := mustDiamond(t)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.HasEdge(1, 2) {
		t.Fatal("Clone missing added edge")
	}
}

func TestGenerateStructure(t *testing.T) {
	for _, n := range []int{1, 2, 16, 128, 1024} {
		p := DefaultGenParams(n)
		g, err := Generate(p, rng.New(uint64(n)))
		if err != nil {
			t.Fatalf("Generate(n=%d): %v", n, err)
		}
		if g.N() != n {
			t.Fatalf("n=%d: got %d subtasks", n, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: invalid: %v", n, err)
		}
		// Every non-level-0 subtask must have at least one parent; ids are
		// topologically ordered by construction (parents have smaller ids).
		for i := 0; i < n; i++ {
			for _, par := range g.Parents(i) {
				if par >= i {
					t.Fatalf("n=%d: parent %d >= child %d", n, par, i)
				}
			}
			if len(g.Parents(i)) > p.MaxParents {
				t.Fatalf("n=%d: subtask %d has %d parents > max %d", n, i, len(g.Parents(i)), p.MaxParents)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultGenParams(256)
	g1, err := Generate(p, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(p, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(g1)
	b2, _ := json.Marshal(g2)
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different DAGs")
	}
	g3, err := Generate(p, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := json.Marshal(g3)
	if string(b1) == string(b3) {
		t.Fatal("different seeds produced identical DAGs")
	}
}

func TestGenerateSingleSource(t *testing.T) {
	p := DefaultGenParams(64)
	p.SingleSource = true
	g, err := Generate(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Roots(); len(r) != 1 {
		t.Fatalf("SingleSource produced %d roots", len(r))
	}
}

func TestGenerateDepthNearTarget(t *testing.T) {
	p := DefaultGenParams(1024)
	g, err := Generate(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != p.MeanLevels {
		t.Fatalf("Depth = %d, want %d (every level has a mandatory chain)", d, p.MeanLevels)
	}
}

func TestGenParamsValidate(t *testing.T) {
	bad := []GenParams{
		{N: 0, MeanLevels: 1, MaxParents: 1},
		{N: 10, MeanLevels: 0, MaxParents: 1},
		{N: 10, MeanLevels: 11, MaxParents: 1},
		{N: 10, MeanLevels: 2, MaxParents: 0},
		{N: 10, MeanLevels: 2, MaxParents: 1, EdgeProb: 1.5},
		{N: 10, MeanLevels: 2, MaxParents: 1, WidthJitter: 1.0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := DefaultGenParams(1024).Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	g := mustDiamond(t)
	s, err := ComputeStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Edges != 4 || s.Depth != 3 || s.Roots != 1 || s.Sinks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxFanIn != 2 || s.MaxFanOut != 2 {
		t.Fatalf("fan stats = %+v", s)
	}
	if s.MeanFanOut != 4.0/3.0 {
		t.Fatalf("MeanFanOut = %v", s.MeanFanOut)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, err := Generate(DefaultGenParams(128), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.Edges() != g.Edges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.N(), back.Edges(), g.N(), g.Edges())
	}
	for i := 0; i < g.N(); i++ {
		for _, c := range g.Children(i) {
			if !back.HasEdge(i, c) {
				t.Fatalf("edge (%d,%d) lost in round trip", i, c)
			}
		}
	}
}

func TestUnmarshalRejectsCycle(t *testing.T) {
	data := []byte(`{"n":2,"edges":[[0,1],[1,0]]}`)
	var g Graph
	if err := json.Unmarshal(data, &g); err == nil {
		t.Fatal("cyclic JSON accepted")
	}
}

func TestUnmarshalRejectsBadEdge(t *testing.T) {
	data := []byte(`{"n":2,"edges":[[0,5]]}`)
	var g Graph
	if err := json.Unmarshal(data, &g); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}
