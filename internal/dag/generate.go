package dag

import (
	"fmt"

	"adhocgrid/internal/rng"
)

// GenParams controls the layered random DAG generator. The generator is a
// stand-in for the unpublished [ShC04] method (DESIGN.md substitution D1):
// the properties the heuristics actually consume — precedence pressure
// (ready-set width) and fan-in/out — are directly parameterized.
type GenParams struct {
	N            int     // number of subtasks (paper: 1024)
	MeanLevels   int     // target number of precedence levels (depth)
	MaxParents   int     // maximum fan-in per subtask
	EdgeProb     float64 // probability of each potential extra parent edge
	WidthJitter  float64 // fractional jitter of per-level width in [0,1)
	SingleSource bool    // if true, level 0 is a single root subtask
}

// DefaultGenParams returns the parameters used for the paper-scale
// workloads: ~32 levels at N=1024 with mean fan-out ≈ 2.
func DefaultGenParams(n int) GenParams {
	levels := 1
	for l := 2; l*l <= n; l++ { // depth ≈ sqrt(N): 32 levels at N=1024
		levels = l
	}
	if levels < 2 && n > 1 {
		levels = 2
	}
	return GenParams{
		N:            n,
		MeanLevels:   levels,
		MaxParents:   4,
		EdgeProb:     0.25,
		WidthJitter:  0.5,
		SingleSource: false,
	}
}

// Validate checks the parameters for internal consistency.
func (p GenParams) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("dag: GenParams.N must be positive, got %d", p.N)
	}
	if p.MeanLevels <= 0 || p.MeanLevels > p.N {
		return fmt.Errorf("dag: GenParams.MeanLevels %d out of range (1..%d)", p.MeanLevels, p.N)
	}
	if p.MaxParents < 1 {
		return fmt.Errorf("dag: GenParams.MaxParents must be >= 1, got %d", p.MaxParents)
	}
	if p.EdgeProb < 0 || p.EdgeProb > 1 {
		return fmt.Errorf("dag: GenParams.EdgeProb %v out of [0,1]", p.EdgeProb)
	}
	if p.WidthJitter < 0 || p.WidthJitter >= 1 {
		return fmt.Errorf("dag: GenParams.WidthJitter %v out of [0,1)", p.WidthJitter)
	}
	return nil
}

// Generate builds a random layered DAG: subtasks are partitioned into
// levels; every non-root subtask receives one mandatory parent from the
// previous level (so the graph is connected level-to-level and every
// non-root has at least one parent) and up to MaxParents-1 additional
// parents drawn from earlier levels with probability EdgeProb each.
// Subtask ids are assigned in level order, so id order is a topological
// order by construction.
func Generate(p GenParams, r *rng.Rand) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	widths := levelWidths(p, r)
	g := NewGraph(p.N)

	// levelOf[i] = level index of subtask i; levelStart[k] = first id of level k.
	levelStart := make([]int, len(widths)+1)
	for k, w := range widths {
		levelStart[k+1] = levelStart[k] + w
	}

	for k := 1; k < len(widths); k++ {
		prevLo, prevHi := levelStart[k-1], levelStart[k]
		for v := levelStart[k]; v < levelStart[k+1]; v++ {
			// Mandatory parent from the immediately preceding level.
			mand := prevLo + r.Intn(prevHi-prevLo)
			if err := g.AddEdge(mand, v); err != nil {
				return nil, err
			}
			// Extra parents from any earlier level.
			extra := p.MaxParents - 1
			for e := 0; e < extra; e++ {
				if r.Float64() >= p.EdgeProb {
					continue
				}
				cand := r.Intn(levelStart[k]) // any id in levels [0,k)
				if cand == mand {
					continue
				}
				if err := g.AddEdge(cand, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// levelWidths partitions N subtasks over approximately MeanLevels levels
// with multiplicative jitter, guaranteeing every level has >= 1 subtask.
func levelWidths(p GenParams, r *rng.Rand) []int {
	levels := p.MeanLevels
	if levels > p.N {
		levels = p.N
	}
	widths := make([]int, levels)
	base := float64(p.N) / float64(levels)
	remaining := p.N
	for k := 0; k < levels; k++ {
		if k == levels-1 {
			widths[k] = remaining
			break
		}
		w := base
		if p.WidthJitter > 0 {
			w *= 1 + p.WidthJitter*(2*r.Float64()-1)
		}
		iw := int(w + 0.5)
		if iw < 1 {
			iw = 1
		}
		// Leave at least one subtask for each remaining level.
		maxW := remaining - (levels - k - 1)
		if iw > maxW {
			iw = maxW
		}
		widths[k] = iw
		remaining -= iw
	}
	if p.SingleSource && levels > 1 && widths[0] > 1 {
		// Move the surplus of level 0 into level 1.
		surplus := widths[0] - 1
		widths[0] = 1
		widths[1] += surplus
	}
	return widths
}

// Stats summarizes structural properties of a DAG; the experiment harness
// reports these so workloads are comparable across runs (DESIGN.md D1).
type Stats struct {
	N          int
	Edges      int
	Depth      int
	Roots      int
	Sinks      int
	MeanFanOut float64 // edges / non-sink subtasks
	MaxFanIn   int
	MaxFanOut  int
}

// ComputeStats returns structural statistics of g.
func ComputeStats(g *Graph) (Stats, error) {
	depth, err := g.Depth()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		N:     g.N(),
		Edges: g.Edges(),
		Depth: depth,
		Roots: len(g.Roots()),
		Sinks: len(g.Sinks()),
	}
	nonSink := 0
	for i := 0; i < g.N(); i++ {
		if len(g.Children(i)) > 0 {
			nonSink++
		}
		if len(g.Children(i)) > s.MaxFanOut {
			s.MaxFanOut = len(g.Children(i))
		}
		if len(g.Parents(i)) > s.MaxFanIn {
			s.MaxFanIn = len(g.Parents(i))
		}
	}
	if nonSink > 0 {
		s.MeanFanOut = float64(s.Edges) / float64(nonSink)
	}
	return s, nil
}
