package dag

import (
	"encoding/json"
	"testing"
)

// FuzzGraphUnmarshal checks that arbitrary JSON never produces an invalid
// graph: either unmarshalling errors or the result passes Validate.
func FuzzGraphUnmarshal(f *testing.F) {
	f.Add([]byte(`{"n":3,"edges":[[0,1],[1,2]]}`))
	f.Add([]byte(`{"n":2,"edges":[[0,1],[1,0]]}`))
	f.Add([]byte(`{"n":0,"edges":[]}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`{"n":5,"edges":[[0,9]]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("unmarshal accepted invalid graph: %v", err)
		}
		// A valid graph must round-trip.
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("marshal of valid graph failed: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.Edges() != g.Edges() {
			t.Fatal("round trip changed shape")
		}
	})
}
