package dag

import (
	"fmt"

	"adhocgrid/internal/rng"
)

// Beyond the layered generator, these structured families cover the DAG
// shapes common in the heterogeneous-computing literature the paper draws
// on. They let the experiment harness check that the heuristics' relative
// ordering is not an artifact of one precedence structure.

// GenerateOutTree builds a rooted tree with edges parent → child: subtask
// 0 is the root and every other subtask attaches to a uniformly random
// earlier subtask, subject to maxChildren (0 = unbounded). Ids are in
// topological order by construction.
func GenerateOutTree(n, maxChildren int, r *rng.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: GenerateOutTree needs n > 0, got %d", n)
	}
	g := NewGraph(n)
	childCount := make([]int, n)
	for v := 1; v < n; v++ {
		// Rejection-sample a parent with remaining child capacity; fall
		// back to a linear scan so the builder cannot stall.
		parent := -1
		for attempt := 0; attempt < 8; attempt++ {
			cand := r.Intn(v)
			if maxChildren <= 0 || childCount[cand] < maxChildren {
				parent = cand
				break
			}
		}
		if parent < 0 {
			for cand := 0; cand < v; cand++ {
				if maxChildren <= 0 || childCount[cand] < maxChildren {
					parent = cand
					break
				}
			}
		}
		if parent < 0 {
			return nil, fmt.Errorf("dag: GenerateOutTree cannot place subtask %d with maxChildren %d", v, maxChildren)
		}
		if err := g.AddEdge(parent, v); err != nil {
			return nil, err
		}
		childCount[parent]++
	}
	return g, nil
}

// GenerateInTree builds the reverse of an out-tree: a reduction tree where
// every subtask feeds exactly one later subtask and subtask n-1 is the
// single sink. The fan-in of each consumer is bounded by maxParents
// (0 = unbounded). Construction mirrors an out-tree so that the fan-in
// bound can always be satisfied.
func GenerateInTree(n, maxParents int, r *rng.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: GenerateInTree needs n > 0, got %d", n)
	}
	out, err := GenerateOutTree(n, maxParents, r)
	if err != nil {
		return nil, err
	}
	// Mirror: vertex v maps to n-1-v and edges reverse, so the out-tree's
	// root becomes the single sink and its fan-out bound becomes the
	// in-tree's fan-in bound.
	g := NewGraph(n)
	for p := 0; p < n; p++ {
		for _, c := range out.Children(p) {
			if err := g.AddEdge(n-1-c, n-1-p); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// GenerateForkJoin builds a series of fork-join stages: a fork subtask
// fans out to a random-width band of independent subtasks which all join
// into the next fork. width controls the mean band width (>= 1).
func GenerateForkJoin(n, width int, r *rng.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: GenerateForkJoin needs n > 0, got %d", n)
	}
	if width < 1 {
		return nil, fmt.Errorf("dag: GenerateForkJoin needs width >= 1, got %d", width)
	}
	g := NewGraph(n)
	// Subtask 0 is the first fork.
	pos := 1
	fork := 0
	for pos < n {
		// A band of 1..2*width-1 parallel subtasks (mean ~width), then a
		// join that becomes the next fork.
		w := 1
		if width > 1 {
			w = 1 + r.Intn(2*width-1)
		}
		remaining := n - pos
		if w > remaining {
			w = remaining
		}
		bandStart := pos
		for k := 0; k < w; k++ {
			if err := g.AddEdge(fork, pos); err != nil {
				return nil, err
			}
			pos++
		}
		if pos >= n {
			break
		}
		join := pos
		for k := bandStart; k < bandStart+w; k++ {
			if err := g.AddEdge(k, join); err != nil {
				return nil, err
			}
		}
		fork = join
		pos++
	}
	return g, nil
}

// TransitiveReduction returns a copy of g with every edge (p, c) removed
// when c is reachable from p through another path. The reduction has the
// same precedence semantics with the minimum number of data items.
func TransitiveReduction(g *Graph) (*Graph, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	red := NewGraph(g.N())
	// reach[v] marks, per candidate edge test, nodes reachable from a
	// parent without using the direct edge.
	for _, p := range order {
		children := g.Children(p)
		if len(children) == 0 {
			continue
		}
		// BFS from every child of p through the original graph; an edge
		// p -> c is redundant iff c is reachable from another child.
		reachable := make(map[int]bool)
		var stack []int
		for _, c := range children {
			for _, gc := range g.Children(c) {
				stack = append(stack, gc)
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reachable[v] {
				continue
			}
			reachable[v] = true
			for _, c := range g.Children(v) {
				stack = append(stack, c)
			}
		}
		for _, c := range children {
			if !reachable[c] {
				if err := red.AddEdge(p, c); err != nil {
					return nil, err
				}
			}
		}
	}
	return red, nil
}
