package adhocgrid_test

import (
	"bytes"
	"strings"
	"testing"

	"adhocgrid"
)

func TestPublicGreedyBaselines(t *testing.T) {
	inst := exampleInstance(t, 96, 21, adhocgrid.CaseA)
	mct, err := adhocgrid.RunMCT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !mct.Metrics.Complete {
		t.Fatalf("MCT mapped %d/96", mct.Metrics.Mapped)
	}
	mm, err := adhocgrid.RunMinMin(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Metrics.Complete {
		t.Fatalf("MinMin mapped %d/96", mm.Metrics.Mapped)
	}
	if v := adhocgrid.Verify(mct.State); len(v) != 0 {
		t.Fatalf("MCT violations: %v", v)
	}
	if v := adhocgrid.Verify(mm.State); len(v) != 0 {
		t.Fatalf("MinMin violations: %v", v)
	}
}

func TestPublicCalibrateTau(t *testing.T) {
	scn, err := adhocgrid.GenerateScenario(128, 23)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := adhocgrid.CalibrateTau(scn, adhocgrid.CaseA, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Fatalf("tau = %d", tau)
	}
}

func TestPublicGanttAndExport(t *testing.T) {
	inst := exampleInstance(t, 64, 25, adhocgrid.CaseB)
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	g := adhocgrid.Gantt(res.State, 60)
	if !strings.Contains(g, "Gantt") || !strings.Contains(g, "m0") {
		t.Fatalf("gantt output wrong:\n%s", g)
	}
	exp := adhocgrid.ExportSchedule(res.State)
	if exp.Case != "B" || len(exp.Assignments) != res.Metrics.Mapped {
		t.Fatalf("export wrong: %+v", exp.Metrics)
	}
}

func TestPublicRecorderAndCSV(t *testing.T) {
	inst := exampleInstance(t, 48, 27, adhocgrid.CaseA)
	rec := adhocgrid.NewRecorder(1)
	cfg := adhocgrid.DefaultConfig(adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	cfg.Observer = rec.Observe
	res, err := adhocgrid.RunSLRHConfig(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != res.Timesteps {
		t.Fatalf("recorded %d of %d timesteps", rec.Len(), res.Timesteps)
	}
	var buf bytes.Buffer
	if err := adhocgrid.WriteAssignmentsCSV(&buf, res.State); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != res.Metrics.Mapped+1 {
		t.Fatalf("CSV lines = %d", lines)
	}
}

func TestPublicExecuteAndEventLog(t *testing.T) {
	inst := exampleInstance(t, 64, 29, adhocgrid.CaseA)
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := adhocgrid.Execute(res.State)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != res.Metrics.Mapped {
		t.Fatalf("executed %d, mapped %d", stats.Completed, res.Metrics.Mapped)
	}
	if len(adhocgrid.EventLog(res.State)) == 0 {
		t.Fatal("empty event log")
	}
}

func TestPublicLoseMachine(t *testing.T) {
	inst := exampleInstance(t, 64, 31, adhocgrid.CaseA)
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	requeued, err := adhocgrid.LoseMachine(res.State, 0, res.State.AETCycles/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(requeued) == 0 {
		t.Fatal("mid-run loss requeued nothing")
	}
	if v := adhocgrid.Verify(res.State); len(v) != 0 {
		t.Fatalf("violations after loss: %v", v)
	}
}

func TestPublicTauCycles(t *testing.T) {
	if adhocgrid.TauCycles(1024) != 340750 {
		t.Fatalf("TauCycles(1024) = %d", adhocgrid.TauCycles(1024))
	}
	if adhocgrid.SecondaryFraction != 0.1 {
		t.Fatal("secondary fraction wrong")
	}
}

func TestPublicCriticalChain(t *testing.T) {
	inst := exampleInstance(t, 64, 33, adhocgrid.CaseA)
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	chain := adhocgrid.CriticalChain(res.State)
	if len(chain) == 0 {
		t.Fatal("empty chain")
	}
	if got := adhocgrid.CycleSeconds * float64(chain[len(chain)-1].End); got != res.Metrics.AETSeconds {
		t.Fatalf("chain end %v != AET %v", got, res.Metrics.AETSeconds)
	}
}

func TestPublicWeightSurface(t *testing.T) {
	inst := exampleInstance(t, 48, 35, adhocgrid.CaseA)
	points, err := adhocgrid.WeightSurface(func(w adhocgrid.Weights) (adhocgrid.Metrics, error) {
		r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, w)
		if err != nil {
			return adhocgrid.Metrics{}, err
		}
		return r.Metrics, nil
	}, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simplex at step 0.25: sum_{a=0..4}(5-a) = 15 points.
	if len(points) != 15 {
		t.Fatalf("surface points = %d", len(points))
	}
	var buf bytes.Buffer
	if err := adhocgrid.WriteSurfaceCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 16 {
		t.Fatalf("CSV lines = %d", lines)
	}
}

func TestPublicStudyNoise(t *testing.T) {
	inst := exampleInstance(t, 64, 37, adhocgrid.CaseA)
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	study, err := adhocgrid.StudyNoise(res.State, adhocgrid.DefaultNoise(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if study.Trials != 10 {
		t.Fatalf("study = %+v", study)
	}
}

func TestPublicGenerateSuite(t *testing.T) {
	suite, err := adhocgrid.GenerateSuite(64, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	scn, err := suite.Scenario(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scn.Instantiate(adhocgrid.CaseC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if v := adhocgrid.Verify(res.State); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
