package adhocgrid

import (
	"fmt"
	"io"

	"adhocgrid/internal/fault"
	"adhocgrid/internal/lrnn"
	"adhocgrid/internal/maxmax"
	"adhocgrid/internal/opt"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/sim"
)

// MaxMaxResult reports a Max-Max run.
type MaxMaxResult = maxmax.Result

// RunMaxMax executes the static Max-Max baseline (§V) on an instance.
func RunMaxMax(inst *Instance, w Weights) (*MaxMaxResult, error) {
	return maxmax.Run(inst, maxmax.Config{Weights: w})
}

// LRNNResult reports a Lagrangian-relaxation static-mapper run.
type LRNNResult = lrnn.Result

// LRNNConfig parameterizes the Lagrangian-relaxation static mapper.
type LRNNConfig = lrnn.Config

// RunLRNN executes the Lagrangian-relaxation static mapper (extension,
// after [LuZ00]/[CaS03]) on an instance.
func RunLRNN(inst *Instance, w Weights) (*LRNNResult, error) {
	return lrnn.Run(inst, lrnn.DefaultConfig(w))
}

// Violation describes one broken schedule constraint found by Verify.
type Violation = sim.Violation

// Verify independently replays a schedule against the paper's resource
// model and returns every violation found (empty = valid). The verifier
// shares no booking logic with the heuristics.
func Verify(s *Schedule) []Violation { return sim.Verify(s) }

// VerifyComplete additionally requires a complete mapping within τ.
func VerifyComplete(s *Schedule) []Violation { return sim.VerifyComplete(s) }

// Fault-plan re-exports (internal/fault): deterministic fault injection
// for the SLRH clock — machine churn, transient subtask failures, and
// link-bandwidth degradation windows.
type (
	// FaultPlan is a deterministic sequence of fault events plus
	// link-degradation windows, attached to a run via Config.Faults.
	FaultPlan = fault.Plan
	// FaultEvent is one planned disturbance (loss, rejoin or failure).
	FaultEvent = fault.Event
	// FaultWindow degrades every link's bandwidth by Factor over
	// [Start, End) cycles.
	FaultWindow = fault.Window
	// FaultKind discriminates fault events.
	FaultKind = fault.Kind
)

// Fault event kinds.
const (
	// FaultLose removes a machine permanently (until a rejoin).
	FaultLose = fault.Lose
	// FaultRejoin returns a previously lost machine to service.
	FaultRejoin = fault.Rejoin
	// FaultFail aborts one subtask's in-flight execution attempt.
	FaultFail = fault.Fail
)

// ParseFaultPlan parses the fault DSL, e.g.
// "lose:1@40000,fail:t217@52000,slow:links*0.5@[60000,90000],rejoin:1@110000".
// The returned plan is normalized; attach it via Config.Faults.
func ParseFaultPlan(s string) (*FaultPlan, error) { return fault.ParsePlan(s) }

// VerifyPlan runs Verify and additionally cross-checks the schedule
// against a fault plan: nothing may run on a machine during its outages,
// planned failures must have aborted their attempts, and the plan's
// degradation windows must match the ones the schedule was built under.
// A nil plan is exactly Verify.
func VerifyPlan(s *Schedule, pl *FaultPlan) []Violation { return sim.VerifyPlan(s, pl) }

// SearchOptions controls OptimizeWeights; zero values take the paper's
// defaults (coarse 0.1, fine 0.02).
//
// FineStep < 0 disables the refinement stage entirely, running only the
// coarse grid. (A zero FineStep selects the 0.02 default, so a negative
// value is the explicit off switch.)
type SearchOptions struct {
	CoarseStep float64
	FineStep   float64 // > 0 sets the step; 0 = paper default; < 0 disables refinement
	FineRadius float64
	Workers    int // parallel evaluations; 0 = GOMAXPROCS
}

// SearchResult reports a completed weight search.
type SearchResult struct {
	Best    Weights
	Metrics Metrics
	// Found reports whether any weight setting yielded a feasible
	// (complete, within-τ) mapping.
	Found     bool
	Evaluated int
}

// HeuristicFunc evaluates one weight setting; see OptimizeWeights.
type HeuristicFunc func(w Weights) (Metrics, error)

// OptimizeWeights performs the paper's §VII two-stage (α, β) search —
// coarse 0.1 grid, then 0.02 refinement — maximizing T100 among weight
// settings whose mapping is complete and meets the deadline.
//
// The run callback is invoked concurrently; wrap any heuristic:
//
//	res, _ := adhocgrid.OptimizeWeights(func(w adhocgrid.Weights) (adhocgrid.Metrics, error) {
//	    r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, w)
//	    if err != nil {
//	        return adhocgrid.Metrics{}, err
//	    }
//	    return r.Metrics, nil
//	}, adhocgrid.SearchOptions{})
func OptimizeWeights(run HeuristicFunc, o SearchOptions) (SearchResult, error) {
	if run == nil {
		return SearchResult{}, fmt.Errorf("adhocgrid: nil heuristic")
	}
	opts := opt.DefaultOptions()
	if o.CoarseStep > 0 {
		opts.CoarseStep = o.CoarseStep
	}
	if o.FineStep > 0 {
		opts.FineStep = o.FineStep
	} else if o.FineStep < 0 {
		// Explicit coarse-only search (opt.Options treats 0 as disabled,
		// but at this layer 0 means "default").
		opts.FineStep = 0
	}
	if o.FineRadius > 0 {
		opts.FineRadius = o.FineRadius
	}
	opts.Workers = o.Workers
	res, err := opt.Search(func(w sched.Weights) (sched.Metrics, error) { return run(w) }, opts)
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{
		Best:      res.Best,
		Metrics:   res.Metrics,
		Found:     res.Found,
		Evaluated: res.Evaluated,
	}, nil
}

// SurfacePoint is one evaluated weight setting of a response surface.
type SurfacePoint = opt.Point

// WeightSurface evaluates the heuristic on the full (α, β) simplex grid
// with the given step and returns every point in deterministic order —
// the response surface behind the paper's Figure 3 sensitivity analysis.
func WeightSurface(run HeuristicFunc, step float64, workers int) ([]SurfacePoint, error) {
	if run == nil {
		return nil, fmt.Errorf("adhocgrid: nil heuristic")
	}
	return opt.Surface(func(w sched.Weights) (sched.Metrics, error) { return run(w) }, step, workers)
}

// WriteSurfaceCSV emits a response surface as CSV
// (alpha,beta,gamma,t100,mapped,aet_seconds,tec,feasible).
func WriteSurfaceCSV(w io.Writer, points []SurfacePoint) error {
	return opt.WriteSurfaceCSV(w, points)
}
