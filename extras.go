package adhocgrid

import (
	"io"

	"adhocgrid/internal/greedy"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/sim"
	"adhocgrid/internal/trace"
	"adhocgrid/internal/workload"
)

// GreedyResult reports an MCT or Min-Min run.
type GreedyResult = greedy.Result

// RunMCT executes the minimum-completion-time greedy static mapper — the
// "simple greedy static heuristic" the paper used to select τ (§III).
func RunMCT(inst *Instance) (*GreedyResult, error) { return greedy.MCT(inst) }

// RunMinMin executes the Ibarra-Kim Min-Min list scheduler [IbK77], the
// heuristic family the paper's Max-Max baseline derives from.
func RunMinMin(inst *Instance) (*GreedyResult, error) { return greedy.MinMin(inst) }

// CalibrateTau reproduces the paper's deadline-selection procedure: the
// MCT greedy's makespan on the scenario (deadline removed, with a 10%
// battery reservation for secondary fallbacks) times slack, in clock
// cycles.
func CalibrateTau(scn *Scenario, c Case, slack float64) (int64, error) {
	return greedy.CalibrateTau(scn, c, slack)
}

// Gantt renders a textual Gantt chart of a schedule: one execution row
// and one link row per machine across [0, max(AET, τ)].
func Gantt(s *Schedule, width int) string { return s.Gantt(width) }

// ScheduleExport is the serializable form of a schedule.
type ScheduleExport = sched.Export

// ExportSchedule captures a schedule's assignments and metrics for
// external analysis.
func ExportSchedule(s *Schedule) ScheduleExport { return s.Export() }

// Recorder collects per-timestep snapshots of an SLRH run; install its
// Observe method as Config.Observer and export with WriteCSV/WriteJSON.
type Recorder = trace.Recorder

// NewRecorder returns a recorder keeping every `every`-th snapshot.
func NewRecorder(every int) *Recorder { return trace.NewRecorder(every) }

// WriteAssignmentsCSV emits a schedule's final mapping as CSV.
func WriteAssignmentsCSV(w io.Writer, s *Schedule) error {
	return trace.WriteAssignmentsCSV(w, s)
}

// ExecStats summarizes an executed schedule: per-machine busy/link time
// and utilization.
type ExecStats = sim.ExecStats

// Execute replays a schedule's chronological event log through the
// event-driven consistency checker and returns utilization statistics.
func Execute(s *Schedule) (ExecStats, error) { return sim.Execute(s) }

// EventLog reconstructs the chronological event sequence of a schedule.
func EventLog(s *Schedule) []sim.Event { return sim.EventLog(s) }

// SimEvent is one entry of the replay event log.
type SimEvent = sim.Event

// TauCycles returns the paper's deadline scaled to an n-subtask
// application, in clock cycles.
func TauCycles(n int) int64 { return grid.TauCycles(n) }

// LoseMachine removes machine j from a schedule's grid at the given cycle,
// unwinding every assignment the loss invalidates; it returns the subtask
// ids that must be re-mapped. Prefer Config.Events for losses during an
// SLRH run; this entry point serves custom control loops.
func LoseMachine(s *Schedule, machine int, at int64) ([]int, error) {
	return s.LoseMachine(machine, at)
}

// SecondaryFraction is the paper's reduction factor for secondary
// versions: 10% of the primary's time, energy and output data.
const SecondaryFraction = workload.SecondaryFraction

// ChainLink is one step of a realized critical chain (see CriticalChain).
type ChainLink = sim.ChainLink

// CriticalChain explains a schedule's makespan: the chain of assignments,
// machine waits and data transfers that determined the application
// execution time, origin first.
func CriticalChain(s *Schedule) []ChainLink { return sim.CriticalChain(s) }

// NoiseModel parameterizes per-transfer link degradation (paper §I:
// links "prone to spurious failures and occasional noise").
type NoiseModel = sim.NoiseModel

// NoiseStudy reports a Monte-Carlo link-noise robustness study.
type NoiseStudy = sim.NoiseStudy

// Realization reports one noisy replay of a schedule.
type Realization = sim.Realization

// DefaultNoise returns a moderate link-noise model.
func DefaultNoise() NoiseModel { return sim.DefaultNoise() }

// StudyNoise replays a schedule `trials` times under the noise model and
// reports how often the realized makespan still meets the deadline.
func StudyNoise(s *Schedule, noise NoiseModel, trials int, seed uint64) (NoiseStudy, error) {
	return sim.StudyNoise(s, noise, trials, seed)
}
