package main

import (
	"encoding/json"
	"go/token"
	"os"
	"testing"

	"adhocgrid/internal/lint"
)

// TestRegisteredAnalyzers locks the driver to the exact analyzer set:
// adding or removing an analyzer must be a deliberate, test-visible
// change.
func TestRegisteredAnalyzers(t *testing.T) {
	want := []string{
		"atomicmix", "bytepurity", "ctxflow", "detrange", "errdrop",
		"floateq", "lockbalance", "pairwise", "wallclock",
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Hint == "" || a.Directive == "" || a.Run == nil {
			t.Errorf("%s: incomplete registration (doc/hint/directive/run must be set)", a.Name)
		}
		if a.AppliesTo == nil {
			t.Errorf("%s: missing scope policy", a.Name)
		}
		if a.Scope == "" {
			t.Errorf("%s: missing human-readable scope (adhoclint -list prints it)", a.Name)
		}
	}
}

func TestSuiteFingerprint(t *testing.T) {
	const want = "atomicmix+bytepurity+ctxflow+detrange+errdrop+floateq+lockbalance+pairwise+wallclock"
	if got := suiteFingerprint(); got != want {
		t.Errorf("suiteFingerprint() = %q, want %q", got, want)
	}
}

// TestReportJSON checks the machine-readable output schema the CI lint
// job consumes: stable field names, sorted findings, exit code 2.
func TestReportJSON(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "b.go", Line: 4, Column: 2},
			Message:  "second",
			Analyzer: lint.Wallclock,
		},
		{
			Pos:      token.Position{Filename: "a.go", Line: 9, Column: 1},
			Message:  "first",
			Analyzer: lint.Detrange,
		},
	}

	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := reportJSON(diags)
	w.Close()
	os.Stdout = old
	var buf []byte
	chunk := make([]byte, 4096)
	for {
		n, err := r.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if err != nil {
			break
		}
	}

	if code != 2 {
		t.Errorf("reportJSON exit = %d, want 2", code)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf)
	}
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2", len(out))
	}
	if out[0]["file"] != "a.go" || out[1]["file"] != "b.go" {
		t.Errorf("findings not sorted by file: %v", out)
	}
	for _, f := range out {
		for _, field := range []string{"file", "line", "col", "analyzer", "message"} {
			if _, ok := f[field]; !ok {
				t.Errorf("finding missing %q field: %v", field, f)
			}
		}
	}
}
