package main

import (
	"testing"

	"adhocgrid/internal/lint"
)

// TestRegisteredAnalyzers locks the driver to the exact analyzer set:
// adding or removing an analyzer must be a deliberate, test-visible
// change.
func TestRegisteredAnalyzers(t *testing.T) {
	want := []string{"detrange", "errdrop", "floateq", "wallclock"}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Hint == "" || a.Directive == "" || a.Run == nil {
			t.Errorf("%s: incomplete registration (doc/hint/directive/run must be set)", a.Name)
		}
		if a.AppliesTo == nil {
			t.Errorf("%s: missing scope policy", a.Name)
		}
	}
}

func TestSuiteFingerprint(t *testing.T) {
	if got := suiteFingerprint(); got != "detrange+errdrop+floateq+wallclock" {
		t.Errorf("suiteFingerprint() = %q", got)
	}
}
