package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"adhocgrid/internal/lint"
	"adhocgrid/internal/lint/load"
)

// vetConfig mirrors the JSON configuration `go vet -vettool` hands to a
// unitchecker-protocol tool, one file per package unit. Fields the
// suite does not need (facts, cgo) are accepted and ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet executes one unitchecker-protocol invocation: read the cfg,
// analyze the package, emit diagnostics to stderr, and always write the
// facts output file the go command expects (the suite exports no facts,
// so it is empty).
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adhoclint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "adhoclint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "adhoclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := load.Importer(fset, cfg.ImportMap, cfg.PackageFile)
	diags, err := analyzePackage(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "adhoclint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
