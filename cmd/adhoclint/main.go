// Command adhoclint runs the repository's invariant analyzers (see
// internal/lint) over Go packages. It is a multichecker in the style of
// golang.org/x/tools/go/analysis, implemented entirely on the standard
// library so the module keeps zero third-party dependencies.
//
// Standalone (the `make lint` gate):
//
//	adhoclint [-hints] [-json] [packages...]     # default ./...
//	adhoclint -list
//
// As a vet tool, speaking the unitchecker .cfg protocol:
//
//	go vet -vettool=$(pwd)/bin/adhoclint ./...
//
// Exit status is 0 when clean, 2 when findings were reported, 1 on
// driver errors. In vettool mode only non-test files are reported:
// tests may deliberately exercise nondeterminism.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"

	"adhocgrid/internal/lint"
	"adhocgrid/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("adhoclint", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	list := fs.Bool("list", false, "list the registered analyzers (name, scope, doc) and exit")
	hints := fs.Bool("hints", false, "print a fix hint under each finding")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable, for CI annotations)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *version != "":
		// `go vet` probes the tool with -V=full and hashes this line
		// into its cache key.
		fmt.Printf("adhoclint version v1-%s\n", suiteFingerprint())
		return 0
	case *printFlags:
		fmt.Println("[]")
		return 0
	case *list:
		// One analyzer per line: name, scope, doc. The README table
		// mirrors this output, so it cannot drift silently.
		for _, a := range lint.Suite() {
			fmt.Printf("%-12s %-42s %s\n", a.Name, a.Scope, a.Doc)
		}
		return 0
	}

	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVet(fs.Arg(0))
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return runStandalone(patterns, *hints, *jsonOut)
}

// suiteFingerprint folds the analyzer names into the version string so
// go vet's result cache invalidates when the suite changes shape.
func suiteFingerprint() string {
	var names []string
	for _, a := range lint.Suite() {
		names = append(names, a.Name)
	}
	return strings.Join(names, "+")
}

// runStandalone loads the named patterns (plus dependencies' export
// data), type-checks each target package from source, and applies every
// in-scope analyzer.
func runStandalone(patterns []string, hints, jsonOut bool) int {
	pkgs, err := load.List("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exports := load.Exports(pkgs)

	var targets []*load.Package
	for _, p := range pkgs {
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := load.Importer(fset, nil, exports)
	var diags []lint.Diagnostic
	for _, p := range targets {
		ds, err := analyzePackage(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhoclint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		diags = append(diags, ds...)
	}
	if jsonOut {
		return reportJSON(diags)
	}
	return report(diags, hints)
}

// analyzePackage type-checks one package from source and runs every
// analyzer whose scope covers it. Findings in _test.go files are
// dropped: tests may deliberately exercise nondeterminism, and the
// standalone loader never feeds them anyway.
func analyzePackage(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) ([]lint.Diagnostic, error) {
	canonical := lint.PackagePath(importPath)
	var scoped []lint.ScopedAnalyzer
	for _, a := range lint.Suite() {
		if a.AppliesTo(canonical) {
			scoped = append(scoped, a)
		}
	}
	if len(scoped) == 0 {
		return nil, nil
	}
	files, err := load.ParseDir(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	pkg, info, err := load.Check(fset, canonical, files, imp)
	if err != nil {
		return nil, err
	}
	var diags []lint.Diagnostic
	for _, a := range scoped {
		ds, err := lint.NewPass(a.Analyzer, fset, files, pkg, info).Run()
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
				diags = append(diags, d)
			}
		}
	}
	// Framework-level directive hygiene: a bare or unknown //lint:
	// directive is an error everywhere, regardless of analyzer scope.
	for _, d := range lint.BareDirectives(fset, files, lint.KnownDirectives(lint.Suite())) {
		if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// report prints findings and returns the process exit code.
func report(diags []lint.Diagnostic, hints bool) int {
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Println(d)
		if hints && d.Analyzer.Hint != "" {
			fmt.Printf("\thint: %s\n", d.Analyzer.Hint)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "adhoclint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// reportJSON prints findings as a JSON array (the `make lint-json`
// target; CI turns these into inline annotations). The schema is
// stable: file, line, col, analyzer, message, hint.
func reportJSON(diags []lint.Diagnostic) int {
	lint.SortDiagnostics(diags)
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Hint     string `json:"hint,omitempty"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer.Name,
			Message:  d.Message,
			Hint:     d.Analyzer.Hint,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
