// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 2-7). See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	experiments [-scale default|bench|full] [-exp all|table1|...|fig7|horizon|robustness|faults|scaling|perf]
//	            [-seed N] [-workers N] [-n N] [-netc N] [-ndag N]
//
// The default scale reproduces the paper's experiment structure at
// |T|=256 with a 3x3 ETC/DAG suite; -scale full selects the paper's exact
// sizes (|T|=1024, 10x10 — hours of CPU time).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"adhocgrid/internal/exp"
)

// writeCSV stores one result's CSV next to the text output.
func writeCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: csv: %v\n", err)
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: csv: %v\n", err)
		return
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", path, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: csv %s: close: %v\n", path, err)
	}
}

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: bench, default or full")
	expName := flag.String("exp", "all", "experiment to run: all, table1..table4, fig2..fig7, horizon, robustness, faults, scaling, perf")
	seed := flag.Uint64("seed", 0, "override the master seed (0 = scale default)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	n := flag.Int("n", 0, "override subtask count")
	netc := flag.Int("netc", 0, "override number of ETC matrices")
	ndag := flag.Int("ndag", 0, "override number of DAGs")
	csvDir := flag.String("csvdir", "", "also write each result as CSV into this directory")
	flag.Parse()

	var sc exp.Scale
	switch *scaleName {
	case "bench":
		sc = exp.Bench()
	case "default":
		sc = exp.Default()
	case "full":
		sc = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *workers != 0 {
		sc.Workers = *workers
	}
	if *n != 0 {
		sc.N = *n
	}
	if *netc != 0 {
		sc.NumETC = *netc
	}
	if *ndag != 0 {
		sc.NumDAG = *ndag
	}

	want := strings.ToLower(*expName)
	run := func(name string) bool { return want == "all" || want == name }

	start := time.Now() //lint:wallclock elapsed-time reporting only; never a scheduling input
	fmt.Printf("# adhocgrid experiments — scale %q (|T|=%d, %dx%d scenarios, seed %d)\n\n",
		sc.Name, sc.N, sc.NumETC, sc.NumDAG, sc.Seed)

	if run("table1") {
		fmt.Println(exp.Table1())
	}
	if run("table2") {
		fmt.Println(exp.Table2())
	}

	needEnv := want == "all" || strings.HasPrefix(want, "fig") || want == "table3" || want == "table4" || want == "perf" || want == "horizon" || want == "robustness" || want == "scaling" || want == "faults"
	if !needEnv {
		return
	}
	env, err := exp.NewEnv(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	if run("table3") {
		t3, err := env.Table3()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table3: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t3.Render())
		writeCSV(*csvDir, "table3.csv", t3.WriteCSV)
	}
	if run("table4") {
		t4 := env.Table4()
		fmt.Println(t4.Render())
		writeCSV(*csvDir, "table4.csv", t4.WriteCSV)
	}
	if run("fig2") {
		f2, err := env.Fig2(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: fig2: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(f2.Render())
		writeCSV(*csvDir, "fig2.csv", f2.WriteCSV)
	}
	if run("fig3") {
		f3 := env.Fig3()
		fmt.Println(f3.Render())
		writeCSV(*csvDir, "fig3.csv", f3.WriteCSV)
	}
	if run("scaling") {
		scl, err := env.Scaling(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(scl.Render())
	}
	if run("faults") {
		fs, err := env.FaultSweep()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: faults: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fs.Render())
		writeCSV(*csvDir, "faults.csv", fs.WriteCSV)
	}
	if run("robustness") {
		rob, err := env.Robustness()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: robustness: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rob.Render())
	}
	if run("horizon") {
		fh, err := env.HorizonSweep(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: horizon: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fh.Render())
		writeCSV(*csvDir, "horizon.csv", fh.WriteCSV)
	}
	if run("fig4") || run("fig5") || run("fig6") || run("fig7") || run("perf") {
		perf := env.Performance()
		writeCSV(*csvDir, "performance.csv", perf.WriteCSV)
		if run("fig4") || run("perf") {
			fmt.Println(perf.RenderFig4())
		}
		if run("fig5") || run("perf") {
			fmt.Println(perf.RenderFig5())
		}
		if run("fig6") || run("perf") {
			fmt.Println(perf.RenderFig6())
		}
		if run("fig7") || run("perf") {
			fmt.Println(perf.RenderFig7())
		}
	}
	fmt.Printf("# completed in %s\n", time.Since(start).Round(time.Millisecond)) //lint:wallclock elapsed-time reporting only; never a scheduling input
}
