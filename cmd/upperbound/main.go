// Command upperbound computes the paper's §VI equivalent-computing-cycles
// upper bound (Tables 3 and 4) for generated ETC matrices, standalone from
// the full experiment harness.
//
// Example:
//
//	upperbound -n 1024 -netc 10 -seed 20040426
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocgrid/internal/bound"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/stats"
	"adhocgrid/internal/workload"
)

func main() {
	n := flag.Int("n", 1024, "number of subtasks")
	netc := flag.Int("netc", 10, "number of ETC matrices")
	seed := flag.Uint64("seed", 20040426, "generation seed")
	energyScale := flag.Float64("energyscale", 0, "battery multiplier (0 = auto |T|/1024)")
	flag.Parse()

	params := workload.DefaultParams(*n)
	params.EnergyScale = *energyScale
	r := rng.New(*seed)

	// MR samples per case: [case][machine>=1][etc]
	mrSamples := map[grid.Case][][]float64{}
	for _, c := range grid.AllCases {
		g := grid.ForCase(c)
		rows := make([][]float64, g.M()-1)
		for k := range rows {
			rows[k] = make([]float64, *netc)
		}
		mrSamples[c] = rows
	}

	fmt.Printf("Upper bound on T100 (|T| = %d, %d ETC matrices, seed %d)\n\n", *n, *netc, *seed)
	fmt.Printf("%-5s %-10s %-10s %-10s\n", "ETC", "Case A", "Case B", "Case C")
	sums := make([]float64, 3)
	for e := 0; e < *netc; e++ {
		scn, err := workload.Generate(params, r.Split())
		if err != nil {
			fmt.Fprintf(os.Stderr, "upperbound: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-5d", e)
		for ci, c := range grid.AllCases {
			inst, err := scn.Instantiate(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "upperbound: %v\n", err)
				os.Exit(1)
			}
			res := bound.UpperBound(inst)
			fmt.Printf(" %-10d", res.T100Bound)
			sums[ci] += float64(res.T100Bound)
			for k := 1; k < len(res.MR); k++ {
				mrSamples[c][k-1][e] = res.MR[k]
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-5s %-10.1f %-10.1f %-10.1f\n\n", "mean",
		sums[0]/float64(*netc), sums[1]/float64(*netc), sums[2]/float64(*netc))

	fmt.Println("Average minimum relative speed MR(j), avg (std):")
	for _, c := range grid.AllCases {
		g := grid.ForCase(c)
		fmt.Printf("Case %s:", c)
		count := map[grid.Class]int{g.Machines[0].Class: 1}
		for k := 1; k < g.M(); k++ {
			cl := g.Machines[k].Class
			count[cl]++
			fmt.Printf("  %s %d: %s", cl, count[cl], stats.Summarize(mrSamples[c][k-1]).String())
		}
		fmt.Println()
	}
}
