// Command gendata generates ad hoc grid workload datasets — DAGs, ETC
// matrices, or complete scenarios — and writes them as JSON for external
// analysis or for replaying identical workloads across tools.
//
// Examples:
//
//	gendata -kind scenario -n 256 -seed 7 -out scenario.json
//	gendata -kind dag -n 1024 -out dag.json
//	gendata -kind etc -n 1024 -out etc.json
//	gendata -kind suite -n 256 -netc 3 -ndag 3 -dir dataset/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"adhocgrid/internal/dag"
	"adhocgrid/internal/etc"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/workload"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gendata: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	kind := flag.String("kind", "scenario", "what to generate: dag, etc, scenario or suite")
	n := flag.Int("n", 256, "number of subtasks")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("out", "", "output file (default stdout)")
	dir := flag.String("dir", "", "output directory for -kind suite")
	netc := flag.Int("netc", 3, "suite: number of ETC matrices")
	ndag := flag.Int("ndag", 3, "suite: number of DAGs")
	flag.Parse()

	r := rng.New(*seed)
	switch *kind {
	case "dag":
		g, err := dag.Generate(dag.DefaultGenParams(*n), r)
		if err != nil {
			fatalf("%v", err)
		}
		st, err := dag.ComputeStats(g)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "gendata: DAG n=%d edges=%d depth=%d roots=%d sinks=%d meanFanOut=%.2f\n",
			st.N, st.Edges, st.Depth, st.Roots, st.Sinks, st.MeanFanOut)
		emit(*out, g)
	case "etc":
		m, err := etc.Generate(etc.DefaultParams(*n), grid.ForCase(grid.CaseA), r)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "gendata: ETC %dx%d mean=%.1fs\n", m.N, m.M(), m.Mean())
		emit(*out, m)
	case "scenario":
		s, err := workload.Generate(workload.DefaultParams(*n), r)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "gendata: scenario |T|=%d tau=%d cycles energyScale=%.3f\n",
			s.N(), s.TauCycles, s.EnergyScale)
		emit(*out, s)
	case "suite":
		if *dir == "" {
			fatalf("-kind suite requires -dir")
		}
		suite, err := workload.GenerateSuite(workload.DefaultParams(*n), *netc, *ndag, r)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatalf("%v", err)
		}
		for e := 0; e < *netc; e++ {
			for d := 0; d < *ndag; d++ {
				s, err := suite.Scenario(e, d)
				if err != nil {
					fatalf("%v", err)
				}
				path := filepath.Join(*dir, fmt.Sprintf("scenario_etc%d_dag%d.json", e, d))
				emit(path, s)
			}
		}
		fmt.Fprintf(os.Stderr, "gendata: wrote %d scenarios to %s\n", *netc**ndag, *dir)
	default:
		fatalf("unknown kind %q", *kind)
	}
}

func emit(path string, v interface{}) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if path == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatalf("write stdout: %v", err)
		}
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}
