// Command slrhd is the long-running scheduling service: an HTTP/JSON
// daemon that prices and maps ad hoc grid scenarios on demand with the
// SLRH heuristics (DESIGN.md §12).
//
// Endpoints:
//
//	POST /v1/map              map one scenario (same knobs as slrhsim)
//	GET  /v1/runs/{id}/trace  trace document of a recent traced run
//	GET  /metrics             Prometheus text metrics
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while draining)
//
// SIGINT/SIGTERM drain gracefully: readiness flips off, the listener
// stops accepting, every accepted run finishes, then the process exits.
//
// Examples:
//
//	slrhd -addr :8080 -workers 4 -queue 64
//	slrhd -smoke        # start on a random port, self-test, drain, exit
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adhocgrid/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "slrhd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs, opts := newFlags()
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		Workers:      *opts.workers,
		ScoreWorkers: *opts.scoreWorkers,
		QueueSize:    *opts.queue,
		CacheSize:    *opts.cache,
		RunHistory:   *opts.runs,
		MaxN:         *opts.maxN,
	}
	if *opts.smoke {
		return runSmoke(cfg)
	}
	return runDaemon(*opts.addr, *opts.drainTimeout, cfg)
}

// options collects the parsed flag values.
type options struct {
	addr         *string
	workers      *int
	scoreWorkers *int
	queue        *int
	cache        *int
	runs         *int
	maxN         *int
	drainTimeout *time.Duration
	smoke        *bool
}

// newFlags declares the flag set (shared by the daemon and smoke paths).
func newFlags() (*flag.FlagSet, options) {
	fs := flag.NewFlagSet("slrhd", flag.ContinueOnError)
	return fs, options{
		addr:         fs.String("addr", ":8080", "listen address"),
		workers:      fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)"),
		scoreWorkers: fs.Int("score-workers", 0, "per-run candidate-scoring fan-out; results are identical at every value (0 = GOMAXPROCS/workers, -1 = serial)"),
		queue:        fs.Int("queue", 64, "accepted-but-waiting run bound; overflow answers 429"),
		cache:        fs.Int("cache", 1024, "result-cache capacity, responses"),
		runs:         fs.Int("runs", 256, "retained trace documents"),
		maxN:         fs.Int("maxn", 2048, "largest |T| accepted per request (-1 = unlimited)"),
		drainTimeout: fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound"),
		smoke:        fs.Bool("smoke", false, "start on a loopback port, self-test the endpoints, drain and exit"),
	}
}

// runDaemon serves until SIGINT/SIGTERM, then drains.
func runDaemon(addr string, drainTimeout time.Duration, cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Printf("slrhd listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case sig := <-stop:
		fmt.Printf("slrhd: %s received, draining\n", sig)
	}
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	s.Close() // runs every still-queued job before returning
	fmt.Println("slrhd: drained cleanly")
	return nil
}

// smokeRequest is the ScaleBench-sized scenario the self-test maps.
const smokeRequest = `{"n": 96, "case": "A", "heuristic": "slrh1", "seed": 1, "alpha": 0.5, "beta": 0.3, "trace": true}`

// runSmoke boots the service on a loopback port, exercises every
// endpoint (map miss + byte-identical hit, trace, metrics, health,
// readiness flip), then drains. Non-nil return means the smoke failed.
func runSmoke(cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: serving on %s\n", base)
	client := &http.Client{Timeout: 60 * time.Second}

	miss, missHdr, err := post(client, base+"/v1/map", smokeRequest)
	if err != nil {
		return fmt.Errorf("map (miss): %w", err)
	}
	if missHdr.Get("X-Cache") != "miss" {
		return fmt.Errorf("first map response X-Cache = %q, want miss", missHdr.Get("X-Cache"))
	}
	hit, hitHdr, err := post(client, base+"/v1/map", smokeRequest)
	if err != nil {
		return fmt.Errorf("map (hit): %w", err)
	}
	if hitHdr.Get("X-Cache") != "hit" {
		return fmt.Errorf("second map response X-Cache = %q, want hit", hitHdr.Get("X-Cache"))
	}
	if !bytes.Equal(miss, hit) {
		return fmt.Errorf("cache hit not byte-identical to miss")
	}
	fmt.Printf("smoke: map ok, %d response bytes, hit == miss\n", len(miss))

	traceBody, _, err := get(client, base+"/v1/runs/"+missHdr.Get("X-Run-Id")+"/trace")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Printf("smoke: trace ok, %d bytes\n", len(traceBody))

	if _, _, err := get(client, base+"/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if _, _, err := get(client, base+"/readyz"); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	metrics, _, err := get(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		`slrhd_map_requests_total{code="200"} 2`,
		"slrhd_cache_hits_total 1",
		"slrhd_cache_misses_total 1",
		`slrhd_runs_total{heuristic="slrh1"} 1`,
		"slrhd_score_workers",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}
	fmt.Println("smoke: health/ready/metrics ok")

	s.BeginDrain()
	if body, code, err := getStatus(client, base+"/readyz"); err != nil || code != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz while draining = %d %s (err %v), want 503", code, body, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	s.Close()
	fmt.Println("smoke: drained cleanly — all checks passed")
	return nil
}

// post issues a POST with a JSON body and returns body + headers,
// erroring on any non-200 status.
func post(client *http.Client, url, body string) ([]byte, http.Header, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, resp.Header, nil
}

// get issues a GET, erroring on any non-200 status.
func get(client *http.Client, url string) ([]byte, http.Header, error) {
	b, code, err := getStatus(client, url)
	if err != nil {
		return nil, nil, err
	}
	if code != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: status %d: %s", url, code, b)
	}
	return b, nil, nil
}

// getStatus issues a GET and returns body + status without judging it.
func getStatus(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, 0, err
	}
	return b, resp.StatusCode, nil
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return b, err
}
