// Command slrhd is the long-running scheduling service: an HTTP/JSON
// daemon that prices and maps ad hoc grid scenarios on demand with the
// SLRH heuristics (DESIGN.md §12).
//
// Endpoints:
//
//	POST /v1/map              map one scenario (same knobs as slrhsim,
//	                          plus a "class" service-class field)
//	GET  /v1/runs/{id}/trace  trace document of a recent traced run
//	GET  /v1/capacity         fitted cost models + sustainable rates
//	GET  /metrics             Prometheus text metrics
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while draining)
//
// SIGINT/SIGTERM drain gracefully: readiness flips off, the listener
// stops accepting, every accepted run finishes, then the process exits.
//
// Examples:
//
//	slrhd -addr :8080 -workers 4 -queue 64
//	slrhd -smoke           # start on a random port, self-test, drain, exit
//	slrhd -admission-smoke # self-test the cost-predictive admission path
//	slrhd -capacity        # calibrate the cost model, print the capacity
//	                       # report, exit
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adhocgrid/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "slrhd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs, opts := newFlags()
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		Workers:      *opts.workers,
		ScoreWorkers: *opts.scoreWorkers,
		QueueSize:    *opts.queue,
		CacheSize:    *opts.cache,
		RunHistory:   *opts.runs,
		MaxN:         *opts.maxN,
	}
	switch {
	case *opts.smoke:
		return runSmoke(cfg)
	case *opts.admissionSmoke:
		return runAdmissionSmoke(cfg)
	case *opts.capacity:
		return runCapacity(cfg)
	case *opts.parity != "":
		return runParity(*opts.parity)
	}
	return runDaemon(*opts.addr, *opts.drainTimeout, cfg)
}

// options collects the parsed flag values.
type options struct {
	addr           *string
	workers        *int
	scoreWorkers   *int
	queue          *int
	cache          *int
	runs           *int
	maxN           *int
	drainTimeout   *time.Duration
	smoke          *bool
	admissionSmoke *bool
	capacity       *bool
	parity         *string
}

// newFlags declares the flag set (shared by the daemon and smoke paths).
func newFlags() (*flag.FlagSet, options) {
	fs := flag.NewFlagSet("slrhd", flag.ContinueOnError)
	return fs, options{
		addr:         fs.String("addr", ":8080", "listen address"),
		workers:      fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)"),
		scoreWorkers: fs.Int("score-workers", 0, "per-run candidate-scoring fan-out; results are identical at every value (0 = GOMAXPROCS/workers, -1 = serial)"),
		queue:        fs.Int("queue", 64, "accepted-but-waiting run bound; overflow answers 429"),
		cache:        fs.Int("cache", 1024, "result-cache capacity, responses"),
		runs:         fs.Int("runs", 256, "retained trace documents"),
		maxN:         fs.Int("maxn", 2048, "largest |T| accepted per request (-1 = unlimited)"),
		drainTimeout: fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound"),
		smoke:        fs.Bool("smoke", false, "start on a loopback port, self-test the endpoints, drain and exit"),
		admissionSmoke: fs.Bool("admission-smoke", false,
			"start on a loopback port, self-test the cost-predictive admission path (model warm-up, capacity answer, cost shed with model-derived Retry-After), drain and exit"),
		capacity: fs.Bool("capacity", false,
			"calibrate the cost model with probe runs, print this instance's capacity report as JSON and exit"),
		parity: fs.String("parity", "",
			"comma-separated base URLs of running slrhd instances; POST a probe request to each and assert the responses are byte-identical, then exit (fleet self-test)"),
	}
}

// runParity is `slrhd -parity addr1,addr2,...`: the fleet byte-parity
// self-test. Every listed instance is asked to map the same probe
// scenario; the determinism contract (DESIGN.md §12) says the bodies
// must be byte-identical no matter which instance — or whose cache —
// answers, which is exactly what makes consistent-hash routing and
// failover in the fabric tier (DESIGN.md §17) transparent to clients.
func runParity(addrs string) error {
	var urls []string
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			urls = append(urls, strings.TrimRight(a, "/"))
		}
	}
	if len(urls) < 2 {
		return fmt.Errorf("-parity needs at least two addresses, got %d", len(urls))
	}
	client := &http.Client{Timeout: 120 * time.Second}
	var first []byte
	for i, u := range urls {
		body, _, err := post(client, u+"/v1/map", smokeRequest)
		if err != nil {
			return fmt.Errorf("parity probe to %s: %w", u, err)
		}
		if i == 0 {
			first = body
			continue
		}
		if !bytes.Equal(body, first) {
			return fmt.Errorf("parity violated: %s answered %d bytes differing from %s's %d bytes",
				u, len(body), urls[0], len(first))
		}
	}
	fmt.Printf("parity: %d instances answered byte-identically (%d bytes)\n", len(urls), len(first))
	return nil
}

// runDaemon serves until SIGINT/SIGTERM, then drains.
func runDaemon(addr string, drainTimeout time.Duration, cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Printf("slrhd listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case sig := <-stop:
		fmt.Printf("slrhd: %s received, draining\n", sig)
	}
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	s.Close() // runs every still-queued job before returning
	fmt.Println("slrhd: drained cleanly")
	return nil
}

// smokeRequest is the ScaleBench-sized scenario the self-test maps.
const smokeRequest = `{"n": 96, "case": "A", "heuristic": "slrh1", "seed": 1, "alpha": 0.5, "beta": 0.3, "trace": true}`

// runSmoke boots the service on a loopback port, exercises every
// endpoint (map miss + byte-identical hit, trace, metrics, health,
// readiness flip), then drains. Non-nil return means the smoke failed.
func runSmoke(cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: serving on %s\n", base)
	client := &http.Client{Timeout: 60 * time.Second}

	miss, missHdr, err := post(client, base+"/v1/map", smokeRequest)
	if err != nil {
		return fmt.Errorf("map (miss): %w", err)
	}
	if missHdr.Get("X-Cache") != "miss" {
		return fmt.Errorf("first map response X-Cache = %q, want miss", missHdr.Get("X-Cache"))
	}
	hit, hitHdr, err := post(client, base+"/v1/map", smokeRequest)
	if err != nil {
		return fmt.Errorf("map (hit): %w", err)
	}
	if hitHdr.Get("X-Cache") != "hit" {
		return fmt.Errorf("second map response X-Cache = %q, want hit", hitHdr.Get("X-Cache"))
	}
	if !bytes.Equal(miss, hit) {
		return fmt.Errorf("cache hit not byte-identical to miss")
	}
	fmt.Printf("smoke: map ok, %d response bytes, hit == miss\n", len(miss))

	traceBody, _, err := get(client, base+"/v1/runs/"+missHdr.Get("X-Run-Id")+"/trace")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Printf("smoke: trace ok, %d bytes\n", len(traceBody))

	if _, _, err := get(client, base+"/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if _, _, err := get(client, base+"/readyz"); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	metrics, _, err := get(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		`slrhd_map_requests_total{code="200"} 2`,
		"slrhd_cache_hits_total 1",
		"slrhd_cache_misses_total 1",
		`slrhd_runs_total{heuristic="slrh1"} 1`,
		"slrhd_score_workers",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}
	fmt.Println("smoke: health/ready/metrics ok")

	capBody, _, err := get(client, base+"/v1/capacity")
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	if !strings.Contains(string(capBody), `"models"`) {
		return fmt.Errorf("capacity report missing models section: %s", capBody)
	}
	fmt.Printf("smoke: capacity ok, %d bytes\n", len(capBody))

	s.BeginDrain()
	if body, code, err := getStatus(client, base+"/readyz"); err != nil || code != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz while draining = %d %s (err %v), want 503", code, body, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	s.Close()
	fmt.Println("smoke: drained cleanly — all checks passed")
	return nil
}

// runCapacity is `slrhd -capacity`: warm the cost model with probe
// runs of every heuristic, print the instance's capacity report, exit.
func runCapacity(cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()
	if err := s.Calibrate(); err != nil {
		return err
	}
	rep, err := s.Capacity(serve.CapacityQuery{})
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// runAdmissionSmoke self-tests the cost-predictive admission path: warm
// the model over real traffic, read a capacity answer back, provoke a
// cost shed through a deliberately impossible class target, and check
// the calibration metrics — then drain. Non-nil return means failure.
func runAdmissionSmoke(cfg serve.Config) error {
	// One worker and a class whose target no real run can meet once the
	// model has a single observation.
	cfg.Workers = 1
	cfg.Classes = append(serve.DefaultClasses(),
		serve.Class{Name: "impossible", Priority: 0, TargetSeconds: 1e-9})
	s := serve.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("admission-smoke: serving on %s\n", base)
	client := &http.Client{Timeout: 60 * time.Second}

	// Warm the model: two sizes pin the slope of the slrh1 cost line.
	for i, n := range []int{64, 128} {
		body := fmt.Sprintf(`{"n": %d, "case": "A", "heuristic": "slrh1", "seed": %d, "alpha": 0.5, "beta": 0.3}`, n, 100+i)
		if _, _, err := post(client, base+"/v1/map", body); err != nil {
			return fmt.Errorf("warm-up |T|=%d: %w", n, err)
		}
	}
	fmt.Println("admission-smoke: model warmed on 2 runs")

	capBody, _, err := get(client, base+"/v1/capacity?heuristic=slrh1&n=1024&class=interactive")
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	var rep struct {
		Answer struct {
			CostSeconds float64 `json:"cost_seconds"`
			ReqPerSec   float64 `json:"req_per_sec"`
		} `json:"answer"`
	}
	if err := json.Unmarshal(capBody, &rep); err != nil {
		return fmt.Errorf("capacity report: %w", err)
	}
	if rep.Answer.CostSeconds <= 0 || rep.Answer.ReqPerSec <= 0 {
		return fmt.Errorf("capacity answer lacks a positive estimate after warm-up: %s", capBody)
	}
	fmt.Printf("admission-smoke: capacity answer ok — sustains %.1f req/s of |T|=1024 slrh1 (%.4fs each)\n",
		rep.Answer.ReqPerSec, rep.Answer.CostSeconds)

	// A warmed model must cost-shed the impossible class with a
	// model-derived Retry-After.
	resp, err := client.Post(base+"/v1/map", "application/json",
		strings.NewReader(`{"n": 64, "case": "A", "heuristic": "slrh1", "seed": 999, "alpha": 0.5, "beta": 0.3, "class": "impossible"}`))
	if err != nil {
		return fmt.Errorf("shed probe: %w", err)
	}
	shedBody, err := readAll(resp)
	if err != nil {
		return fmt.Errorf("shed probe body: %w", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("impossible-class request got %d (%s), want 429", resp.StatusCode, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("cost shed missing Retry-After header")
	}
	fmt.Printf("admission-smoke: cost shed ok — 429 with Retry-After %ss\n", resp.Header.Get("Retry-After"))

	// Unknown classes are client errors, not sheds.
	resp, err = client.Post(base+"/v1/map", "application/json",
		strings.NewReader(`{"n": 64, "case": "A", "heuristic": "slrh1", "seed": 7, "alpha": 0.5, "beta": 0.3, "class": "platinum"}`))
	if err != nil {
		return fmt.Errorf("class probe: %w", err)
	}
	if _, err := readAll(resp); err != nil {
		return fmt.Errorf("class probe body: %w", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("unknown class got %d, want 400", resp.StatusCode)
	}

	metrics, _, err := get(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		`slrhd_shed_total{reason="cost"} 1`,
		`slrhd_prediction_ratio_count{heuristic="slrh1"} 1`,
		`slrhd_model_observations{heuristic="slrh1"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}
	fmt.Println("admission-smoke: calibration metrics ok")

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	s.Close()
	fmt.Println("admission-smoke: drained cleanly — all checks passed")
	return nil
}

// post issues a POST with a JSON body and returns body + headers,
// erroring on any non-200 status.
func post(client *http.Client, url, body string) ([]byte, http.Header, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, resp.Header, nil
}

// get issues a GET, erroring on any non-200 status.
func get(client *http.Client, url string) ([]byte, http.Header, error) {
	b, code, err := getStatus(client, url)
	if err != nil {
		return nil, nil, err
	}
	if code != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: status %d: %s", url, code, b)
	}
	return b, nil, nil
}

// getStatus issues a GET and returns body + status without judging it.
func getStatus(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, 0, err
	}
	return b, resp.StatusCode, nil
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return b, err
}
