package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"adhocgrid/internal/core"
	"adhocgrid/internal/serve"
)

// TestParseEvents covers the -lose machine-loss spec parser.
func TestParseEvents(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    []core.Event
		wantErr string
	}{
		{name: "single", spec: "1@40000", want: []core.Event{{At: 40000, Machine: 1}}},
		{name: "multi", spec: "0@10000,2@50000,1@60000", want: []core.Event{
			{At: 10000, Machine: 0}, {At: 50000, Machine: 2}, {At: 60000, Machine: 1}}},
		{name: "machine zero at cycle zero", spec: "0@0", want: []core.Event{{At: 0, Machine: 0}}},
		{name: "missing separator", spec: "140000", wantErr: "want machine@cycle"},
		{name: "too many separators", spec: "1@2@3", wantErr: "want machine@cycle"},
		{name: "empty spec", spec: "", wantErr: "want machine@cycle"},
		{name: "bad machine", spec: "x@40000", wantErr: "bad machine"},
		{name: "bad cycle", spec: "1@4e4", wantErr: "bad cycle"},
		{name: "bad trailing event", spec: "1@40000,oops", wantErr: "want machine@cycle"},
		{name: "empty element", spec: "1@40000,", wantErr: "want machine@cycle"},
		{name: "float machine", spec: "1.5@40000", wantErr: "bad machine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseEvents(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseEvents(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseEvents(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parseEvents(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
		})
	}
}

// postMap POSTs a request to a test service and returns status + body.
func postMap(t *testing.T, ts *httptest.Server, req serve.Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestJSONParityWithService is the end-to-end acceptance check: for a
// fixed seed, `slrhsim -json` must produce bytes identical to the
// service's POST /v1/map response — on a cache miss and again on the
// cache hit.
func TestJSONParityWithService(t *testing.T) {
	flagSets := [][]string{
		{"-n", "64", "-seed", "11", "-case", "A", "-heuristic", "slrh1", "-alpha", "0.5", "-beta", "0.3", "-json"},
		{"-n", "64", "-seed", "11", "-case", "B", "-heuristic", "slrh3", "-alpha", "0.4", "-beta", "0.2", "-json"},
		{"-n", "64", "-seed", "11", "-case", "C", "-heuristic", "maxmax", "-alpha", "0.5", "-beta", "0.3", "-json"},
		{"-n", "64", "-seed", "11", "-case", "A", "-heuristic", "slrh1", "-alpha", "0.5", "-beta", "0.3",
			"-lose", "1@40000,0@90000", "-json"},
		{"-n", "64", "-seed", "11", "-case", "A", "-heuristic", "slrh1", "-alpha", "0.5", "-beta", "0.3",
			"-faults", "lose:1@20000,slow:links*0.5@[30000,90000],rejoin:1@50000", "-json"},
		// The -lose sugar spelling of the same plan must hit the same
		// cache entry as the pure-DSL request below.
		{"-n", "64", "-seed", "11", "-case", "A", "-heuristic", "slrh1", "-alpha", "0.5", "-beta", "0.3",
			"-lose", "1@20000", "-faults", "slow:links*0.5@[30000,90000],rejoin:1@50000", "-json"},
	}
	requests := []serve.Request{
		{N: 64, Seed: 11, Case: "A", Heuristic: "slrh1", Alpha: 0.5, Beta: 0.3},
		{N: 64, Seed: 11, Case: "B", Heuristic: "slrh3", Alpha: 0.4, Beta: 0.2},
		{N: 64, Seed: 11, Case: "C", Heuristic: "maxmax", Alpha: 0.5, Beta: 0.3},
		{N: 64, Seed: 11, Case: "A", Heuristic: "slrh1", Alpha: 0.5, Beta: 0.3,
			Lose: []serve.LossEvent{{Machine: 1, At: 40000}, {Machine: 0, At: 90000}}},
		{N: 64, Seed: 11, Case: "A", Heuristic: "slrh1", Alpha: 0.5, Beta: 0.3,
			Faults: "lose:1@20000,slow:links*0.5@[30000,90000],rejoin:1@50000"},
		{N: 64, Seed: 11, Case: "A", Heuristic: "slrh1", Alpha: 0.5, Beta: 0.3,
			Faults: "lose:1@20000,slow:links*0.5@[30000,90000],rejoin:1@50000"},
	}

	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	for i, flags := range flagSets {
		var cli bytes.Buffer
		if err := run(flags, &cli); err != nil {
			t.Fatalf("slrhsim %v: %v", flags, err)
		}
		status, miss := postMap(t, ts, requests[i])
		if status != http.StatusOK {
			t.Fatalf("service status %d for %+v: %s", status, requests[i], miss)
		}
		if !bytes.Equal(cli.Bytes(), miss) {
			t.Fatalf("CLI and service bytes differ for %v:\ncli:     %s\nservice: %s", flags, cli.Bytes(), miss)
		}
		status, hit := postMap(t, ts, requests[i])
		if status != http.StatusOK {
			t.Fatalf("cache-hit status %d", status)
		}
		if !bytes.Equal(cli.Bytes(), hit) {
			t.Fatalf("CLI and cached service bytes differ for %v", flags)
		}
	}
}

// TestFaultPlanRejection drives malformed or inconsistent fault specs
// through run(): syntax errors surface from the parser, semantic ones
// (duplicates, ranges, ordering) from plan validation inside the run.
// Each case must fail with a distinct, recognizable message.
func TestFaultPlanRejection(t *testing.T) {
	cases := []struct {
		name    string
		flags   []string
		wantErr string
	}{
		{"unknown event kind", []string{"-faults", "explode:1@40"}, "unknown event kind"},
		{"negative cycle", []string{"-faults", "lose:1@-5"}, "cycle"},
		{"non-monotone anchors", []string{"-faults", "lose:1@500,fail:t3@400"}, "non-monotone"},
		{"bad factor", []string{"-faults", "slow:links*1.5@[10,20]"}, "factor"},
		{"duplicate loss", []string{"-faults", "lose:1@40,lose:1@50"}, "machine 1"},
		{"dup loss across forms", []string{"-lose", "1@40", "-faults", "lose:1@50"}, "machine 1"},
		{"machine out of range", []string{"-faults", "lose:99@40"}, "machine 99"},
		{"subtask out of range", []string{"-faults", "fail:t16@40"}, "subtask 16"},
		{"rejoin before loss", []string{"-faults", "rejoin:1@40"}, "machine 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append([]string{"-n", "16"}, tc.flags...), io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) err = %v, want containing %q", tc.flags, err, tc.wantErr)
			}
		})
	}
}

// TestTextModeWithFaults smoke-tests the human-readable path under a
// churn plan: the run must verify against the plan and report the
// rejoined machine.
func TestTextModeWithFaults(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "48", "-seed", "3", "-heuristic", "slrh1",
		"-faults", "lose:1@2000,rejoin:1@4000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"VERIFY      ok", "faults=2", "rejoined at cycle 4000"} {
		if !strings.Contains(text, want) {
			t.Fatalf("faulted text output missing %q:\n%s", want, text)
		}
	}
}

// TestJSONRejectsTextModeOptions pins the flag-compatibility contract.
func TestJSONRejectsTextModeOptions(t *testing.T) {
	for _, flags := range [][]string{
		{"-json", "-gantt", "80"},
		{"-json", "-chain"},
		{"-json", "-trace", "/tmp/x.csv"},
		{"-json", "-assignments", "/tmp/x.csv"},
	} {
		if err := run(flags, io.Discard); err == nil {
			t.Fatalf("run(%v) should refuse text-mode options", flags)
		}
	}
}

// TestTextModeStillWorks smoke-tests the original human-readable path
// through the refactored run().
func TestTextModeStillWorks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "48", "-seed", "3", "-heuristic", "slrh1"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"heuristic   slrh1", "mapped      48/48", "VERIFY      ok"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestRunUnknownFlagsAndValues exercises the error paths.
func TestRunUnknownFlagsAndValues(t *testing.T) {
	for _, flags := range [][]string{
		{"-case", "Z"},
		{"-heuristic", "nope"},
		{"-heuristic", "maxmax", "-lose", "1@40000"},
		{"-heuristic", "maxmax", "-faults", "lose:1@40000"},
		{"-lose", "garbage"},
		{"-faults", "garbage"},
	} {
		if err := run(append([]string{"-n", "16"}, flags...), io.Discard); err == nil {
			t.Fatalf("run(%v) should fail", flags)
		}
	}
}
