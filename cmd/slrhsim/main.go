// Command slrhsim runs one resource-management heuristic on one generated
// ad hoc grid scenario and reports the resulting schedule metrics. It is
// the single-run workhorse behind the experiment harness, exposed for
// interactive exploration. With -json it emits the exact response schema
// (and bytes) of the slrhd service's POST /v1/map, which the parity tests
// pin down.
//
// Examples:
//
//	slrhsim -n 256 -case A -heuristic slrh1 -alpha 0.5 -beta 0.3
//	slrhsim -n 256 -case A -heuristic slrh1 -alpha 0.5 -beta 0.3 -lose 1@40000
//	slrhsim -n 256 -faults 'lose:1@40000,fail:t17@52000,slow:links*0.5@[60000,90000],rejoin:1@110000'
//	slrhsim -n 128 -heuristic maxmax -alpha 1 -beta 0 -assignments out.csv
//	slrhsim -n 96 -seed 1 -json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adhocgrid/internal/core"
	"adhocgrid/internal/fault"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/maxmax"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/serve"
	"adhocgrid/internal/sim"
	"adhocgrid/internal/trace"
	"adhocgrid/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "slrhsim: %v\n", err)
		os.Exit(1)
	}
}

// run executes one CLI invocation, writing its report to stdout. It is
// the whole command behind a testable seam: the parity tests drive it
// with -json and compare the bytes against the service's responses.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("slrhsim", flag.ContinueOnError)
	n := fs.Int("n", 256, "number of subtasks")
	seed := fs.Uint64("seed", 1, "workload seed")
	caseName := fs.String("case", "A", "grid configuration: A, B or C")
	heuristic := fs.String("heuristic", "slrh1", "slrh1, slrh2, slrh3 or maxmax")
	alpha := fs.Float64("alpha", 0.5, "objective weight for T100")
	beta := fs.Float64("beta", 0.3, "objective weight for energy (gamma = 1-alpha-beta)")
	deltaT := fs.Int64("deltat", core.DefaultDeltaT, "SLRH timestep in clock cycles")
	horizon := fs.Int64("horizon", core.DefaultHorizon, "SLRH receding horizon in clock cycles")
	adaptive := fs.Bool("adaptive", false, "enable on-the-fly weight adaptation (extension)")
	lose := fs.String("lose", "", "machine loss events, comma-separated machine@cycle (sugar for lose: items of -faults)")
	faults := fs.String("faults", "", "fault plan: comma-separated lose:M@C, rejoin:M@C, fail:tT@C, slow:links*F@[C1,C2]")
	traceFile := fs.String("trace", "", "write per-timestep trace CSV to this file")
	assignFile := fs.String("assignments", "", "write the final mapping CSV to this file")
	energyScale := fs.Float64("energyscale", 0, "battery multiplier (0 = auto |T|/1024)")
	verify := fs.Bool("verify", true, "independently verify the schedule")
	gantt := fs.Int("gantt", 0, "print a textual Gantt chart this many columns wide (0 = off)")
	chain := fs.Bool("chain", false, "print the critical chain that determined the makespan")
	jsonOut := fs.Bool("json", false, "emit the POST /v1/map response schema as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *jsonOut {
		if *traceFile != "" || *assignFile != "" || *gantt > 0 || *chain {
			return fmt.Errorf("-trace/-assignments/-gantt/-chain are text-mode options; -json emits the service schema only")
		}
		return runJSON(stdout, *n, *seed, *caseName, *heuristic, *alpha, *beta,
			*deltaT, *horizon, *adaptive, *energyScale, *lose, *faults)
	}

	var c grid.Case
	switch strings.ToUpper(*caseName) {
	case "A":
		c = grid.CaseA
	case "B":
		c = grid.CaseB
	case "C":
		c = grid.CaseC
	default:
		return fmt.Errorf("unknown case %q", *caseName)
	}

	params := workload.DefaultParams(*n)
	params.EnergyScale = *energyScale
	scn, err := workload.Generate(params, rng.New(*seed))
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	inst, err := scn.Instantiate(c)
	if err != nil {
		return fmt.Errorf("instantiate: %w", err)
	}
	w := sched.NewWeights(*alpha, *beta)

	var (
		metrics    sched.Metrics
		state      *sched.State
		verifyPlan *fault.Plan
		extra      string
	)
	switch strings.ToLower(*heuristic) {
	case "slrh1", "slrh2", "slrh3":
		variant := map[string]core.Variant{
			"slrh1": core.SLRH1, "slrh2": core.SLRH2, "slrh3": core.SLRH3,
		}[strings.ToLower(*heuristic)]
		cfg := core.DefaultConfig(variant, w)
		cfg.DeltaT = *deltaT
		cfg.Horizon = *horizon
		if *adaptive {
			cfg.Adaptive = core.NewAdaptiveController(w)
		}
		plan, err := parsePlan(*faults, *lose)
		if err != nil {
			return err
		}
		cfg.Faults = plan
		var rec *trace.Recorder
		if *traceFile != "" {
			rec = trace.NewRecorder(1)
			cfg.Observer = rec.Observe
		}
		res, err := core.Run(inst, cfg)
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
		metrics, state = res.Metrics, res.State
		verifyPlan = plan
		extra = fmt.Sprintf("timesteps=%d requeued=%d elapsed=%s", res.Timesteps, res.Requeued, res.Elapsed)
		if plan != nil && !plan.Empty() {
			extra += fmt.Sprintf(" faults=%d skipped=%d", res.FaultsApplied, res.FaultsSkipped)
		}
		if rec != nil {
			if err := writeFile(*traceFile, rec.WriteCSV); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
	case "maxmax":
		if *lose != "" || *faults != "" || *adaptive || *traceFile != "" {
			return fmt.Errorf("-lose/-faults/-adaptive/-trace apply to the SLRH variants only")
		}
		res, err := maxmax.Run(inst, maxmax.Config{Weights: w})
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
		metrics, state = res.Metrics, res.State
		extra = fmt.Sprintf("steps=%d elapsed=%s", res.Steps, res.Elapsed)
	default:
		return fmt.Errorf("unknown heuristic %q", *heuristic)
	}

	buf := &bytes.Buffer{}
	fmt.Fprintf(buf, "heuristic   %s (alpha=%.2f beta=%.2f gamma=%.2f)\n", *heuristic, w.Alpha, w.Beta, w.Gamma)
	fmt.Fprintf(buf, "scenario    |T|=%d case %s seed %d tau=%.0fs TSE=%.1f\n",
		*n, c, *seed, grid.CyclesToSeconds(inst.TauCycles), inst.Grid.TSE())
	fmt.Fprintf(buf, "mapped      %d/%d (complete=%v)\n", metrics.Mapped, *n, metrics.Complete)
	fmt.Fprintf(buf, "T100        %d\n", metrics.T100)
	fmt.Fprintf(buf, "AET         %.1fs (within tau: %v)\n", metrics.AETSeconds, metrics.MetTau)
	fmt.Fprintf(buf, "TEC         %.2f energy units\n", metrics.TEC)
	fmt.Fprintf(buf, "objective   %.4f\n", metrics.Objective)
	fmt.Fprintf(buf, "run         %s\n", extra)
	for j := 0; j < inst.Grid.M(); j++ {
		status := "alive"
		if !state.Alive(j) {
			status = fmt.Sprintf("lost at cycle %d", state.DeadAt(j))
		} else if d := state.Downtime(j); len(d) > 0 {
			status = fmt.Sprintf("alive, rejoined at cycle %d", d[len(d)-1].End)
		}
		fmt.Fprintf(buf, "machine %d   %-5s remaining %.2f/%.2f energy (%s)\n",
			j, inst.Grid.Machines[j].Class, state.Ledger.Remaining(j), inst.Grid.Machines[j].Battery, status)
	}

	if *gantt > 0 {
		fmt.Fprintln(buf)
		fmt.Fprint(buf, state.Gantt(*gantt))
	}
	if *chain {
		fmt.Fprintln(buf, "\ncritical chain (origin -> AET):")
		for _, link := range sim.CriticalChain(state) {
			line := fmt.Sprintf("  subtask %4d on machine %d  [%7.1fs, %7.1fs)  via %s",
				link.Subtask, link.Machine,
				grid.CyclesToSeconds(link.Start), grid.CyclesToSeconds(link.End), link.Via)
			if link.DataWaitCycles > 0 {
				line += fmt.Sprintf(" (+%.1fs data wait)", grid.CyclesToSeconds(link.DataWaitCycles))
			}
			fmt.Fprintln(buf, line)
		}
	}
	if *assignFile != "" {
		if err := writeFile(*assignFile, func(w io.Writer) error {
			return trace.WriteAssignmentsCSV(w, state)
		}); err != nil {
			return fmt.Errorf("assignments: %w", err)
		}
	}
	var verifyErr error
	if *verify {
		if violations := sim.VerifyPlan(state, verifyPlan); len(violations) > 0 {
			fmt.Fprintf(buf, "VERIFY      %d violations:\n", len(violations))
			for _, v := range violations {
				fmt.Fprintf(buf, "  %s\n", v)
			}
			verifyErr = fmt.Errorf("verification found %d violations", len(violations))
		} else {
			fmt.Fprintln(buf, "VERIFY      ok (independent replay found no violations)")
		}
	}
	if _, err := stdout.Write(buf.Bytes()); err != nil {
		return err
	}
	return verifyErr
}

// runJSON is the -json path: it routes the flags through the exact code
// the slrhd service runs (serve.Execute + serve.EncodeResult), so the
// CLI's bytes and the service's response bytes are one artifact.
func runJSON(stdout io.Writer, n int, seed uint64, caseName, heuristic string,
	alpha, beta float64, deltaT, horizon int64, adaptive bool, energyScale float64, lose, faults string) error {
	req := serve.Request{
		N:           n,
		Case:        caseName,
		Heuristic:   heuristic,
		Seed:        seed,
		Alpha:       alpha,
		Beta:        beta,
		DeltaT:      deltaT,
		Horizon:     horizon,
		Adaptive:    adaptive,
		EnergyScale: energyScale,
		Faults:      faults,
	}
	if lose != "" {
		events, err := parseEvents(lose)
		if err != nil {
			return err
		}
		for _, e := range events {
			req.Lose = append(req.Lose, serve.LossEvent{Machine: e.Machine, At: e.At})
		}
	}
	out, err := serve.Execute(req, 0)
	if err != nil {
		return err
	}
	buf := &bytes.Buffer{}
	if err := serve.EncodeResult(buf, out.Result); err != nil {
		return err
	}
	_, err = stdout.Write(buf.Bytes())
	return err
}

// parsePlan builds the run's fault plan from the -faults DSL and the
// -lose sugar; a run with neither gets a nil plan. Validation beyond
// syntax (duplicate losses, out-of-range ids, rejoin ordering) is left
// to the run itself, which knows the grid and workload sizes.
func parsePlan(faults, lose string) (*fault.Plan, error) {
	if faults == "" && lose == "" {
		return nil, nil
	}
	pl, err := fault.ParsePlan(faults)
	if err != nil {
		return nil, err
	}
	if lose != "" {
		events, err := parseEvents(lose)
		if err != nil {
			return nil, err
		}
		for _, e := range events {
			pl.Events = append(pl.Events, fault.Event{Kind: fault.Lose, At: e.At, Machine: e.Machine})
		}
	}
	pl.Normalize()
	return pl, nil
}

// parseEvents parses the -lose spec: comma-separated machine@cycle
// pairs, e.g. "1@40000" or "0@10000,2@50000".
func parseEvents(s string) ([]core.Event, error) {
	var events []core.Event
	for _, part := range strings.Split(s, ",") {
		bits := strings.Split(part, "@")
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad event %q, want machine@cycle", part)
		}
		m, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad machine in %q: %v", part, err)
		}
		at, err := strconv.ParseInt(bits[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad cycle in %q: %v", part, err)
		}
		events = append(events, core.Event{At: at, Machine: m})
	}
	return events, nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		//lint:errdrop the write error takes precedence; close is cleanup on an already-failed path
		f.Close()
		return err
	}
	return f.Close()
}
