// Command slrhsim runs one resource-management heuristic on one generated
// ad hoc grid scenario and reports the resulting schedule metrics. It is
// the single-run workhorse behind the experiment harness, exposed for
// interactive exploration.
//
// Examples:
//
//	slrhsim -n 256 -case A -heuristic slrh1 -alpha 0.5 -beta 0.3
//	slrhsim -n 256 -case A -heuristic slrh1 -alpha 0.5 -beta 0.3 -lose 1@40000
//	slrhsim -n 128 -heuristic maxmax -alpha 1 -beta 0 -assignments out.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adhocgrid/internal/core"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/maxmax"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/sim"
	"adhocgrid/internal/trace"
	"adhocgrid/internal/workload"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "slrhsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	n := flag.Int("n", 256, "number of subtasks")
	seed := flag.Uint64("seed", 1, "workload seed")
	caseName := flag.String("case", "A", "grid configuration: A, B or C")
	heuristic := flag.String("heuristic", "slrh1", "slrh1, slrh2, slrh3 or maxmax")
	alpha := flag.Float64("alpha", 0.5, "objective weight for T100")
	beta := flag.Float64("beta", 0.3, "objective weight for energy (gamma = 1-alpha-beta)")
	deltaT := flag.Int64("deltat", core.DefaultDeltaT, "SLRH timestep in clock cycles")
	horizon := flag.Int64("horizon", core.DefaultHorizon, "SLRH receding horizon in clock cycles")
	adaptive := flag.Bool("adaptive", false, "enable on-the-fly weight adaptation (extension)")
	lose := flag.String("lose", "", "machine loss events, comma-separated machine@cycle (e.g. 1@40000)")
	traceFile := flag.String("trace", "", "write per-timestep trace CSV to this file")
	assignFile := flag.String("assignments", "", "write the final mapping CSV to this file")
	energyScale := flag.Float64("energyscale", 0, "battery multiplier (0 = auto |T|/1024)")
	verify := flag.Bool("verify", true, "independently verify the schedule")
	gantt := flag.Int("gantt", 0, "print a textual Gantt chart this many columns wide (0 = off)")
	chain := flag.Bool("chain", false, "print the critical chain that determined the makespan")
	flag.Parse()

	var c grid.Case
	switch strings.ToUpper(*caseName) {
	case "A":
		c = grid.CaseA
	case "B":
		c = grid.CaseB
	case "C":
		c = grid.CaseC
	default:
		fatalf("unknown case %q", *caseName)
	}

	params := workload.DefaultParams(*n)
	params.EnergyScale = *energyScale
	scn, err := workload.Generate(params, rng.New(*seed))
	if err != nil {
		fatalf("generate: %v", err)
	}
	inst, err := scn.Instantiate(c)
	if err != nil {
		fatalf("instantiate: %v", err)
	}
	w := sched.NewWeights(*alpha, *beta)

	var (
		metrics sched.Metrics
		state   *sched.State
		extra   string
	)
	switch strings.ToLower(*heuristic) {
	case "slrh1", "slrh2", "slrh3":
		variant := map[string]core.Variant{
			"slrh1": core.SLRH1, "slrh2": core.SLRH2, "slrh3": core.SLRH3,
		}[strings.ToLower(*heuristic)]
		cfg := core.DefaultConfig(variant, w)
		cfg.DeltaT = *deltaT
		cfg.Horizon = *horizon
		if *adaptive {
			cfg.Adaptive = core.NewAdaptiveController(w)
		}
		if *lose != "" {
			events, err := parseEvents(*lose)
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Events = events
		}
		var rec *trace.Recorder
		if *traceFile != "" {
			rec = trace.NewRecorder(1)
			cfg.Observer = rec.Observe
		}
		res, err := core.Run(inst, cfg)
		if err != nil {
			fatalf("run: %v", err)
		}
		metrics, state = res.Metrics, res.State
		extra = fmt.Sprintf("timesteps=%d requeued=%d elapsed=%s", res.Timesteps, res.Requeued, res.Elapsed)
		if rec != nil {
			if err := writeFile(*traceFile, rec.WriteCSV); err != nil {
				fatalf("trace: %v", err)
			}
		}
	case "maxmax":
		if *lose != "" || *adaptive || *traceFile != "" {
			fatalf("-lose/-adaptive/-trace apply to the SLRH variants only")
		}
		res, err := maxmax.Run(inst, maxmax.Config{Weights: w})
		if err != nil {
			fatalf("run: %v", err)
		}
		metrics, state = res.Metrics, res.State
		extra = fmt.Sprintf("steps=%d elapsed=%s", res.Steps, res.Elapsed)
	default:
		fatalf("unknown heuristic %q", *heuristic)
	}

	fmt.Printf("heuristic   %s (alpha=%.2f beta=%.2f gamma=%.2f)\n", *heuristic, w.Alpha, w.Beta, w.Gamma)
	fmt.Printf("scenario    |T|=%d case %s seed %d tau=%.0fs TSE=%.1f\n",
		*n, c, *seed, grid.CyclesToSeconds(inst.TauCycles), inst.Grid.TSE())
	fmt.Printf("mapped      %d/%d (complete=%v)\n", metrics.Mapped, *n, metrics.Complete)
	fmt.Printf("T100        %d\n", metrics.T100)
	fmt.Printf("AET         %.1fs (within tau: %v)\n", metrics.AETSeconds, metrics.MetTau)
	fmt.Printf("TEC         %.2f energy units\n", metrics.TEC)
	fmt.Printf("objective   %.4f\n", metrics.Objective)
	fmt.Printf("run         %s\n", extra)
	for j := 0; j < inst.Grid.M(); j++ {
		status := "alive"
		if !state.Alive(j) {
			status = fmt.Sprintf("lost at cycle %d", state.DeadAt(j))
		}
		fmt.Printf("machine %d   %-5s remaining %.2f/%.2f energy (%s)\n",
			j, inst.Grid.Machines[j].Class, state.Ledger.Remaining(j), inst.Grid.Machines[j].Battery, status)
	}

	if *gantt > 0 {
		fmt.Println()
		fmt.Print(state.Gantt(*gantt))
	}
	if *chain {
		fmt.Println("\ncritical chain (origin -> AET):")
		for _, link := range sim.CriticalChain(state) {
			line := fmt.Sprintf("  subtask %4d on machine %d  [%7.1fs, %7.1fs)  via %s",
				link.Subtask, link.Machine,
				grid.CyclesToSeconds(link.Start), grid.CyclesToSeconds(link.End), link.Via)
			if link.DataWaitCycles > 0 {
				line += fmt.Sprintf(" (+%.1fs data wait)", grid.CyclesToSeconds(link.DataWaitCycles))
			}
			fmt.Println(line)
		}
	}
	if *assignFile != "" {
		if err := writeFile(*assignFile, func(w io.Writer) error {
			return trace.WriteAssignmentsCSV(w, state)
		}); err != nil {
			fatalf("assignments: %v", err)
		}
	}
	if *verify {
		if violations := sim.Verify(state); len(violations) > 0 {
			fmt.Printf("VERIFY      %d violations:\n", len(violations))
			for _, v := range violations {
				fmt.Printf("  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("VERIFY      ok (independent replay found no violations)")
	}
}

func parseEvents(s string) ([]core.Event, error) {
	var events []core.Event
	for _, part := range strings.Split(s, ",") {
		bits := strings.Split(part, "@")
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad event %q, want machine@cycle", part)
		}
		m, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad machine in %q: %v", part, err)
		}
		at, err := strconv.ParseInt(bits[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad cycle in %q: %v", part, err)
		}
		events = append(events, core.Event{At: at, Machine: m})
	}
	return events, nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		//lint:errdrop the write error takes precedence; close is cleanup on an already-failed path
		f.Close()
		return err
	}
	return f.Close()
}
