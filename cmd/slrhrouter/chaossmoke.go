package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"adhocgrid/internal/chaos"
	"adhocgrid/internal/fabric"
	"adhocgrid/internal/leakcheck"
	"adhocgrid/internal/serve"
)

// chaosHarness is the shared state of `slrhrouter -chaos-smoke`: three
// persistent in-process slrhd backends, the logical names the fault
// plans address them by, and the canonical answer bytes every check
// compares against. Each scenario boots its own router (fresh breaker
// and budget state) behind a chaos transport over the same backends.
type chaosHarness struct {
	base   fabric.Config
	urls   []string
	names  map[string]string // URL → plan name ("home", "peer0", "peer1")
	home   string            // smokeScenario's home backend URL
	want   []byte            // smokeScenario's canonical answer
	client *http.Client
}

// runChaosSmoke is `make chaos-smoke`: drive every fault class the
// chaos DSL can inject through a live router and assert the hardening
// contract — each fault yields either the byte-identical correct
// answer or a well-formed 503/429 with Retry-After, never a hang, a
// partial body, or a leaked goroutine.
func runChaosSmoke(cfg fabric.Config) error {
	h := &chaosHarness{base: cfg, client: &http.Client{Timeout: 60 * time.Second}}
	var backends []*backend
	for i := 0; i < 3; i++ {
		b, err := startBackend()
		if err != nil {
			return err
		}
		defer b.stop()
		backends = append(backends, b)
		h.urls = append(h.urls, b.url)
	}

	// Name the backends by their ring role for smokeScenario: the fault
	// plans below say "home" and mean it.
	ring := fabric.NewRing(cfg.Replicas)
	for _, u := range h.urls {
		ring.Add(u)
	}
	var req serve.Request
	if err := json.Unmarshal([]byte(smokeScenario), &req); err != nil {
		return fmt.Errorf("smoke scenario: %w", err)
	}
	h.home = ring.Home(serve.CanonicalKey(req))
	h.names = map[string]string{h.home: "home"}
	var peers []string
	for _, u := range h.urls {
		if u != h.home {
			peers = append(peers, u)
		}
	}
	sort.Strings(peers)
	for i, u := range peers {
		h.names[u] = fmt.Sprintf("peer%d", i)
	}

	// The canonical answer: every backend must agree on it byte for
	// byte before any fault is worth injecting.
	for i, u := range h.urls {
		b, _, err := post(h.client, u+"/v1/map", smokeScenario)
		if err != nil {
			return fmt.Errorf("direct map (backend %d): %w", i, err)
		}
		if i == 0 {
			h.want = b
		} else if !bytes.Equal(b, h.want) {
			return fmt.Errorf("backends disagree before chaos: %d vs %d bytes", len(h.want), len(b))
		}
	}
	fmt.Printf("chaos-smoke: 3 backends agree on %d canonical bytes (home %s)\n", len(h.want), h.names[h.home])

	// Single-fault classes against the home backend: the response must
	// be byte-identical, either served through the fault (delay,
	// slowbody) or by failing over around it (drop, 5xx, reset,
	// blackhole).
	faults := []struct {
		title    string
		dsl      string
		failover bool
		mut      func(*fabric.Config)
	}{
		{"drop", "drop:home@[0,99]", true, nil},
		{"delay", "delay:home*40ms@[0,99]", false, nil},
		{"5xx-burst", "5xx:home@[0,99]", true, nil},
		{"slowbody", "slowbody:home*1ms@[0,99]", false, nil},
		{"reset", "reset:home@[0,99]", true, nil},
		{"blackhole", "blackhole:home@[0,99]", true, func(c *fabric.Config) {
			c.AttemptTimeout = 200 * time.Millisecond
		}},
	}
	for _, fc := range faults {
		fc := fc
		err := h.withRouter(fc.dsl, fc.mut, func(base string, rt *fabric.Router) error {
			body, hdr, err := post(h.client, base+"/v1/map", smokeScenario)
			if err != nil {
				return err
			}
			if !bytes.Equal(body, h.want) {
				return fmt.Errorf("answer not byte-identical under fault (%d vs %d bytes)", len(body), len(h.want))
			}
			served := hdr.Get("X-Backend")
			if fc.failover && served == h.home {
				return fmt.Errorf("answer still credited to the faulted home backend")
			}
			if !fc.failover && served != h.home {
				return fmt.Errorf("fault should be survivable in place, but %s answered", h.names[served])
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", fc.title, err)
		}
		fmt.Printf("chaos-smoke: %-10s ok — byte-identical answer (failover=%v)\n", fc.title, fc.failover)
	}

	// Every backend blackholed with an empty retry budget: the walk's
	// free attempt burns its timeout, the next needs a token nobody
	// banked, and the client gets a fast well-formed 429 with a
	// Retry-After — not a hang for the full client deadline.
	err := h.withRouter("blackhole:home@[0,99],blackhole:peer0@[0,99],blackhole:peer1@[0,99]", func(c *fabric.Config) {
		c.AttemptTimeout = 150 * time.Millisecond
		c.Retries = -1
		c.RetryBudgetRatio = -1
		c.RetryBudgetBurst = -1
	}, func(base string, rt *fabric.Router) error {
		body, code, hdr, err := postAny(h.client, base+"/v1/map", smokeScenario)
		if err != nil {
			return err
		}
		if code != http.StatusTooManyRequests {
			return fmt.Errorf("status %d (%s), want 429", code, body)
		}
		if hdr.Get("Retry-After") == "" {
			return fmt.Errorf("429 is missing its Retry-After hint")
		}
		if !strings.Contains(string(body), "retry budget exhausted") {
			return fmt.Errorf("429 body %q lacks the budget detail", body)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("retry-budget: %w", err)
	}
	fmt.Println("chaos-smoke: retry-budget ok — blackholed fleet fails fast with 429 + Retry-After")

	// Fleet-wide 5xx burst: the walk exhausts and the backend's own 503
	// comes back verbatim — a well-formed JSON error, not a router-made
	// wrapper hiding the evidence.
	err = h.withRouter("5xx:home@[0,99],5xx:peer0@[0,99],5xx:peer1@[0,99]", nil,
		func(base string, rt *fabric.Router) error {
			body, code, _, err := postAny(h.client, base+"/v1/map", smokeScenario)
			if err != nil {
				return err
			}
			if code != http.StatusServiceUnavailable {
				return fmt.Errorf("status %d (%s), want the verbatim 503", code, body)
			}
			var parsed struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &parsed); err != nil || parsed.Error == "" {
				return fmt.Errorf("503 body %q is not a well-formed JSON error (%v)", body, err)
			}
			if !strings.Contains(parsed.Error, "chaos: injected 503 burst") {
				return fmt.Errorf("503 error %q is not the backend's verbatim answer", parsed.Error)
			}
			return nil
		})
	if err != nil {
		return fmt.Errorf("fleet-5xx: %w", err)
	}
	fmt.Println("chaos-smoke: fleet-5xx ok — exhausted walk returns the last 5xx verbatim")

	// Batch degradation: home blackholed, budget empty, breaker held
	// shut. Every item homed on the faulted backend degrades to its own
	// well-formed 429 line with a Retry-After; every other item answers
	// 200 with the backend's exact bytes; the summary reconciles.
	if err := h.batchDegradation(); err != nil {
		return fmt.Errorf("batch-degradation: %w", err)
	}
	fmt.Println("chaos-smoke: batch-degradation ok — per-item 429 lines, neighbours unharmed, summary reconciles")

	// Dynamic membership under live traffic: a fourth backend joins and
	// leaves repeatedly while clients hammer the fleet; every response
	// stays a byte-identical 200 and the roster ends where it began.
	if err := h.membershipChurn(); err != nil {
		return fmt.Errorf("membership: %w", err)
	}
	fmt.Println("chaos-smoke: membership ok — join/leave churn invisible to live traffic")

	// Everything above has shut down; stop the persistent backends too
	// (stop is idempotent, so the deferred stops stay harmless) and
	// assert nothing the scenarios spawned survives.
	for _, b := range backends {
		b.stop()
	}
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second) //lint:wallclock leak-settle deadline for live goroutine teardown; never a scheduling input
	for {
		leaks := leakcheck.Find()
		if len(leaks) == 0 {
			break
		}
		if time.Now().After(deadline) { //lint:wallclock leak-settle deadline check; never a scheduling input
			for _, g := range leaks {
				fmt.Printf("chaos-smoke: leaked goroutine %s [%s] created by %s\n%s\n", g.ID, g.State, g.CreatedBy, g.Raw)
			}
			return fmt.Errorf("%d goroutine(s) outlived the chaos scenarios", len(leaks))
		}
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("chaos-smoke: zero leaked goroutines — all checks passed")
	return nil
}

// withRouter boots a fresh router behind a chaos transport driven by
// the DSL plan, runs the check against its HTTP front, and tears
// everything down.
func (h *chaosHarness) withRouter(dsl string, mut func(*fabric.Config), fn func(base string, rt *fabric.Router) error) error {
	plan, err := chaos.ParsePlan(dsl)
	if err != nil {
		return fmt.Errorf("plan %q: %w", dsl, err)
	}
	tr := chaos.NewTransport(nil, plan, 1)
	for _, url := range h.urls {
		tr.Register(h.names[url], url)
	}
	cfg := h.base
	cfg.Backends = h.urls
	cfg.Client = &http.Client{Transport: tr}
	cfg.ProbeInterval = 200 * time.Millisecond
	cfg.BackoffBase = 5 * time.Millisecond
	if mut != nil {
		mut(&cfg)
	}
	rt, err := fabric.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go func() {
		//lint:errdrop Serve always returns ErrServerClosed after Close; the scenario's assertions are the verdict
		_ = httpSrv.Serve(ln)
	}()
	defer func() {
		//lint:errdrop best-effort teardown between scenarios
		_ = httpSrv.Close()
	}()
	return fn("http://"+ln.Addr().String(), rt)
}

// batchDegradation runs a six-item sweep against a fleet whose home
// backend is blackholed with the budget off and the breaker pinned
// shut, so the per-item outcome is a pure function of ring placement.
func (h *chaosHarness) batchDegradation() error {
	return h.withRouter("blackhole:home@[0,99]", func(c *fabric.Config) {
		c.AttemptTimeout = 150 * time.Millisecond
		c.Retries = -1
		c.RetryBudgetRatio = -1
		c.RetryBudgetBurst = -1
		c.BreakerThreshold = 100 // never trips: each faulted item must fail on its own
	}, func(base string, rt *fabric.Router) error {
		const items = 6
		sweep := `{"sweep": {"ns": [96], "seeds": [1, 2, 3, 4, 5, 6], "alpha": 0.5, "beta": 0.3}}`
		body, _, err := post(h.client, base+"/v1/map/batch", sweep)
		if err != nil {
			return err
		}
		// Expected outcome per item, straight from ring placement.
		wantStatus := make([]int, items)
		faulted := 0
		for i := 0; i < items; i++ {
			req := serve.Request{N: 96, Case: "A", Heuristic: "slrh1", Seed: uint64(i + 1), Alpha: 0.5, Beta: 0.3}
			if rt.Ring().Home(serve.CanonicalKey(req)) == h.home {
				wantStatus[i] = http.StatusTooManyRequests
				faulted++
			} else {
				wantStatus[i] = http.StatusOK
			}
		}
		lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
		if len(lines) != items+1 {
			return fmt.Errorf("batch emitted %d lines, want %d items + summary", len(lines), items)
		}
		ok, failed := 0, 0
		for i, raw := range lines {
			var line struct {
				Index      *int            `json:"index"`
				Status     int             `json:"status"`
				Body       json.RawMessage `json:"body"`
				Error      string          `json:"error"`
				RetryAfter string          `json:"retry_after"`
				Done       bool            `json:"done"`
				Items      int             `json:"items"`
				OK         int             `json:"ok"`
				Failed     int             `json:"failed"`
			}
			if err := json.Unmarshal(raw, &line); err != nil {
				return fmt.Errorf("line %d is not well-formed JSON: %w (%s)", i, err, raw)
			}
			if line.Done {
				if line.Items != items || line.OK != ok || line.Failed != failed {
					return fmt.Errorf("summary %s does not reconcile with %d ok / %d failed lines", raw, ok, failed)
				}
				continue
			}
			if line.Index == nil || *line.Index != i {
				return fmt.Errorf("line %d out of order: %s", i, raw)
			}
			if line.Status != wantStatus[i] {
				return fmt.Errorf("item %d status %d, want %d (ring placement)", i, line.Status, wantStatus[i])
			}
			if line.Status == http.StatusOK {
				ok++
				if len(line.Body) == 0 {
					return fmt.Errorf("item %d answered 200 with no body", i)
				}
			} else {
				failed++
				if line.RetryAfter == "" || line.Error == "" {
					return fmt.Errorf("degraded item %d lacks retry_after/error detail: %s", i, raw)
				}
			}
		}
		if faulted == 0 {
			return fmt.Errorf("no sweep item homed on the blackholed backend; the degradation path went unexercised")
		}
		fmt.Printf("chaos-smoke: batch spread %d faulted / %d healthy items across the ring\n", faulted, items-faulted)
		return nil
	})
}

// membershipChurn joins and leaves a fourth backend while concurrent
// clients post the smoke scenario, asserting every answer is a
// byte-identical 200 across each ring transition.
func (h *chaosHarness) membershipChurn() error {
	extra, err := startBackend()
	if err != nil {
		return err
	}
	defer extra.stop()
	return h.withRouter("", nil, func(base string, rt *fabric.Router) error {
		api := base + "/v1/members"
		errs := make(chan error, 5)
		var wg sync.WaitGroup
		stopTraffic := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := &http.Client{Timeout: 60 * time.Second}
				defer client.CloseIdleConnections()
				for i := 0; ; i++ {
					select {
					case <-stopTraffic:
						return
					default:
					}
					body, _, err := post(client, base+"/v1/map", smokeScenario)
					if err != nil {
						errs <- fmt.Errorf("traffic request %d: %w", i, err)
						return
					}
					if !bytes.Equal(body, h.want) {
						errs <- fmt.Errorf("traffic request %d: bytes diverged during churn", i)
						return
					}
				}
			}()
		}
		for i := 0; i < 8; i++ {
			joinBody := `{"url": "` + extra.url + `"}`
			resp, err := h.client.Post(api, "application/json", strings.NewReader(joinBody))
			if err != nil {
				close(stopTraffic)
				wg.Wait()
				return fmt.Errorf("join %d: %w", i, err)
			}
			//lint:errdrop the status code is the assertion; the join reply body is redundant here
			_, _ = readAll(resp)
			if resp.StatusCode != http.StatusCreated {
				close(stopTraffic)
				wg.Wait()
				return fmt.Errorf("join %d: status %d, want 201", i, resp.StatusCode)
			}
			req, err := http.NewRequest(http.MethodDelete, api+"?url="+extra.url, nil)
			if err != nil {
				close(stopTraffic)
				wg.Wait()
				return err
			}
			resp, err = h.client.Do(req)
			if err != nil {
				close(stopTraffic)
				wg.Wait()
				return fmt.Errorf("leave %d: %w", i, err)
			}
			//lint:errdrop the status code is the assertion; the leave reply body is redundant here
			_, _ = readAll(resp)
			if resp.StatusCode != http.StatusOK {
				close(stopTraffic)
				wg.Wait()
				return fmt.Errorf("leave %d: status %d, want 200", i, resp.StatusCode)
			}
		}
		close(stopTraffic)
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
		}
		if got := len(rt.Members()); got != 3 {
			return fmt.Errorf("fleet ended with %d members, want the original 3", got)
		}
		listing, _, err := get(h.client, api)
		if err != nil {
			return fmt.Errorf("final roster: %w", err)
		}
		if strings.Contains(string(listing), extra.url) {
			return fmt.Errorf("departed member still on the roster: %s", listing)
		}
		return nil
	})
}

// postAny issues a POST and returns body, status and headers without
// judging the status (post errors on non-200).
func postAny(client *http.Client, url, body string) ([]byte, int, http.Header, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, 0, nil, err
	}
	return b, resp.StatusCode, resp.Header, nil
}
