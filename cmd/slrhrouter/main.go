// Command slrhrouter is the fabric tier: a stateless router that
// consistent-hashes canonical request keys across N slrhd backends
// (cross-fleet cache affinity), fails over to ring successors with
// byte-identical answers, fans scenario sweeps out via
// POST /v1/map/batch, and aggregates per-backend capacity reports into
// one fleet answer (DESIGN.md §17).
//
// Endpoints:
//
//	POST /v1/map              route one map request to its home backend
//	POST /v1/map/batch        scatter a sweep, gather in input order (NDJSON)
//	GET  /v1/runs/{id}/trace  look a run id up across the fleet
//	GET  /v1/capacity         merged fleet capacity report
//	GET  /metrics             slrhrouter_* Prometheus text metrics
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while draining or fleetless)
//
// Examples:
//
//	slrhrouter -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	slrhrouter -smoke    # boot two in-process slrhd backends, self-test
//	                     # routing, failover byte-parity, batch order and
//	                     # fleet capacity, then exit
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"adhocgrid/internal/chaos"
	"adhocgrid/internal/fabric"
	"adhocgrid/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "slrhrouter: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slrhrouter", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8090", "listen address")
		backends      = fs.String("backends", "", "comma-separated slrhd base URLs (required unless -smoke)")
		replicas      = fs.Int("replicas", fabric.DefaultReplicas, "virtual nodes per backend on the hash ring")
		window        = fs.Int("window", 4, "max in-flight batch items per home backend")
		retries       = fs.Int("retries", 1, "extra attempts per backend before failing over (-1 = none)")
		backoff       = fs.Duration("backoff", 25*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		probeInterval = fs.Duration("probe-interval", 2*time.Second, "backend /readyz probe cadence")
		maxBatch      = fs.Int("maxbatch", 1024, "largest batch after sweep expansion")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound")
		attemptTO     = fs.Duration("attempt-timeout", 10*time.Second, "per-attempt backend timeout, distinct from the client deadline")
		breakerThresh = fs.Int("breaker-threshold", 1, "exhausted candidate walks that trip a backend's circuit breaker open")
		budgetRatio   = fs.Float64("retry-budget-ratio", 0.2, "retry tokens each request deposits into the fleet-wide budget (-1 = none)")
		budgetBurst   = fs.Int("retry-budget-burst", 10, "retry tokens the fleet-wide budget can bank (-1 = refuse all retries)")
		chaosPlan     = fs.String("chaos", "", "fault plan injected between router and backends, e.g. drop:b0@[0,9] (backends named b0.. in -backends order)")
		chaosSeed     = fs.Uint64("chaos-seed", 1, "seed for the chaos plan's deterministic fault schedule")
		smoke         = fs.Bool("smoke", false, "boot two in-process slrhd backends, self-test the fabric, exit")
		chaosSmoke    = fs.Bool("chaos-smoke", false, "boot three in-process slrhd backends behind a fault-injecting transport, assert the hardening contract, exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fabric.Config{
		Replicas:         *replicas,
		Window:           *window,
		Retries:          *retries,
		BackoffBase:      *backoff,
		ProbeInterval:    *probeInterval,
		MaxBatchItems:    *maxBatch,
		AttemptTimeout:   *attemptTO,
		BreakerThreshold: *breakerThresh,
		RetryBudgetRatio: *budgetRatio,
		RetryBudgetBurst: *budgetBurst,
	}
	if *chaosSmoke {
		return runChaosSmoke(cfg)
	}
	if *smoke {
		return runSmoke(cfg)
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated slrhd base URLs)")
	}
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			cfg.Backends = append(cfg.Backends, strings.TrimRight(b, "/"))
		}
	}
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		tr := chaos.NewTransport(nil, plan, *chaosSeed)
		for i, b := range cfg.Backends {
			tr.Register(fmt.Sprintf("b%d", i), b)
		}
		cfg.Client = &http.Client{Transport: tr}
		fmt.Printf("slrhrouter: chaos plan %q active (seed %d)\n", plan.String(), *chaosSeed)
	}
	return runDaemon(*addr, *drainTimeout, cfg)
}

// runDaemon serves until SIGINT/SIGTERM, then drains.
func runDaemon(addr string, drainTimeout time.Duration, cfg fabric.Config) error {
	rt, err := fabric.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	fmt.Printf("slrhrouter listening on %s, %d backends\n", ln.Addr(), rt.Ring().Len())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case sig := <-stop:
		fmt.Printf("slrhrouter: %s received, draining\n", sig)
	}
	rt.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("slrhrouter: drained cleanly")
	return nil
}

// backend is one in-process slrhd instance the smoke runs the fabric
// over.
type backend struct {
	srv  *serve.Server
	http *http.Server
	ln   net.Listener
	url  string
	once sync.Once
}

// startBackend boots one in-process slrhd on a loopback port.
func startBackend() (*backend, error) {
	s := serve.New(serve.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	b := &backend{srv: s, http: &http.Server{Handler: s.Handler()}, ln: ln, url: "http://" + ln.Addr().String()}
	go func() {
		//lint:errdrop Serve always returns ErrServerClosed after Close/Shutdown; the smoke's assertions are the verdict
		_ = b.http.Serve(ln)
	}()
	return b, nil
}

// stop shuts the backend's listener and service down (idempotent, so
// the chaos smoke can stop early for its leak check with the deferred
// stop still armed for error paths).
func (b *backend) stop() {
	b.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		//lint:errdrop best-effort teardown at smoke exit
		_ = b.http.Shutdown(ctx)
		b.srv.Close()
	})
}

// smokeScenario is the request the routing and failover checks map.
const smokeScenario = `{"n": 96, "case": "A", "heuristic": "slrh1", "seed": 1, "alpha": 0.5, "beta": 0.3}`

// runSmoke is `make fabric-smoke`: two in-process slrhd backends under
// one router, asserting the fabric contract end to end — routed and
// re-routed (failed-over) responses byte-identical to each backend's
// direct answer, deterministic batch order with byte-identical repeat,
// and a fleet capacity report that aggregates both planners.
func runSmoke(cfg fabric.Config) error {
	b1, err := startBackend()
	if err != nil {
		return err
	}
	defer b1.stop()
	b2, err := startBackend()
	if err != nil {
		return err
	}
	defer b2.stop()

	cfg.Backends = []string{b1.url, b2.url}
	cfg.ProbeInterval = 200 * time.Millisecond
	cfg.BackoffBase = 5 * time.Millisecond
	rt, err := fabric.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go func() {
		//lint:errdrop Serve always returns ErrServerClosed after Shutdown; the smoke's assertions are the verdict
		_ = httpSrv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		//lint:errdrop best-effort teardown at smoke exit
		_ = httpSrv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 120 * time.Second}
	fmt.Printf("fabric-smoke: router on %s over %s and %s\n", base, b1.url, b2.url)

	// 1. Routing: the router's answer must be byte-identical to asking
	// either backend directly (any backend computes the same bytes; the
	// ring only decides whose cache warms).
	routed, hdr, err := post(client, base+"/v1/map", smokeScenario)
	if err != nil {
		return fmt.Errorf("routed map: %w", err)
	}
	home := hdr.Get("X-Backend")
	if home == "" {
		return fmt.Errorf("routed response missing X-Backend")
	}
	direct1, _, err := post(client, b1.url+"/v1/map", smokeScenario)
	if err != nil {
		return fmt.Errorf("direct map (backend 1): %w", err)
	}
	direct2, _, err := post(client, b2.url+"/v1/map", smokeScenario)
	if err != nil {
		return fmt.Errorf("direct map (backend 2): %w", err)
	}
	if !bytes.Equal(routed, direct1) || !bytes.Equal(direct1, direct2) {
		return fmt.Errorf("byte-parity violated: router/backend1/backend2 lengths %d/%d/%d",
			len(routed), len(direct1), len(direct2))
	}
	fmt.Printf("fabric-smoke: routed == direct on both backends (%d bytes, home %s)\n", len(routed), home)

	// Affinity: the same scenario routes to the same backend and now
	// hits its cache.
	again, hdr2, err := post(client, base+"/v1/map", smokeScenario)
	if err != nil {
		return fmt.Errorf("routed map (repeat): %w", err)
	}
	if hdr2.Get("X-Backend") != home {
		return fmt.Errorf("affinity violated: %s then %s", home, hdr2.Get("X-Backend"))
	}
	if hdr2.Get("X-Cache") != "hit" || !bytes.Equal(again, routed) {
		return fmt.Errorf("repeat should be a byte-identical cache hit, got X-Cache=%q", hdr2.Get("X-Cache"))
	}
	fmt.Println("fabric-smoke: cache affinity ok — repeat hit the home backend's cache")

	// 2. Failover: kill the home backend; the re-routed answer must be
	// byte-identical to the home backend's.
	downed := b1
	if home == b2.url {
		downed = b2
	}
	downed.stop()
	failover, hdr3, err := post(client, base+"/v1/map", smokeScenario)
	if err != nil {
		return fmt.Errorf("failover map: %w", err)
	}
	if hdr3.Get("X-Backend") == home {
		return fmt.Errorf("request still routed to the downed backend %s", home)
	}
	if !bytes.Equal(failover, routed) {
		return fmt.Errorf("failover answer not byte-identical to the home backend's")
	}
	fmt.Printf("fabric-smoke: failover ok — ring successor %s answered byte-identically\n", hdr3.Get("X-Backend"))

	// 3. Batch: a sweep scattered over the surviving fleet must come
	// back in input order, and a repeat must reproduce the response
	// byte for byte.
	const sweep = `{"sweep": {"heuristics": ["slrh1", "maxmax"], "ns": [64, 96], "seeds": [1], "alpha": 0.5, "beta": 0.3}}`
	batch1, _, err := post(client, base+"/v1/map/batch", sweep)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if err := checkBatchOrder(batch1, 4); err != nil {
		return err
	}
	batch2, _, err := post(client, base+"/v1/map/batch", sweep)
	if err != nil {
		return fmt.Errorf("batch (repeat): %w", err)
	}
	if !bytes.Equal(batch1, batch2) {
		return fmt.Errorf("batch repeat not byte-identical (%d vs %d bytes)", len(batch1), len(batch2))
	}
	fmt.Printf("fabric-smoke: batch ok — 4 items in input order, repeat byte-identical (%d bytes)\n", len(batch1))

	// 4. Fleet capacity: the merged report must aggregate the surviving
	// backend's planner (the downed one is reported unreachable).
	capBody, _, err := get(client, base+"/v1/capacity")
	if err != nil {
		return fmt.Errorf("fleet capacity: %w", err)
	}
	var rep struct {
		Backends int `json:"backends"`
		Healthy  int `json:"healthy"`
		Workers  int `json:"workers"`
	}
	if err := json.Unmarshal(capBody, &rep); err != nil {
		return fmt.Errorf("fleet capacity report: %w", err)
	}
	if rep.Backends != 2 || rep.Healthy != 1 || rep.Workers != 2 {
		return fmt.Errorf("fleet capacity merge wrong: backends=%d healthy=%d workers=%d, want 2/1/2",
			rep.Backends, rep.Healthy, rep.Workers)
	}
	fmt.Println("fabric-smoke: fleet capacity ok — 1/2 backends healthy, workers aggregated")

	// 5. Router metrics.
	metrics, _, err := get(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		`slrhrouter_map_requests_total{code="200"}`,
		`slrhrouter_batch_items_total{status="ok"} 8`,
		"slrhrouter_backends 2",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}
	// Failovers: the explicit failover check plus every batch item whose
	// home was the downed backend — at least 1, never 0.
	if strings.Contains(string(metrics), "slrhrouter_failovers_total 0") {
		return fmt.Errorf("failover counter still zero after a failed-over request")
	}
	fmt.Println("fabric-smoke: metrics ok")

	rt.BeginDrain()
	if _, code, err := getStatus(client, base+"/readyz"); err != nil || code != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz while draining = %d (err %v), want 503", code, err)
	}
	fmt.Println("fabric-smoke: drained cleanly — all checks passed")
	return nil
}

// checkBatchOrder asserts an NDJSON batch body carries exactly items
// result lines with ascending indexes, all 200, plus a summary line.
func checkBatchOrder(body []byte, items int) error {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := 0
	sawDone := false
	for sc.Scan() {
		var line struct {
			Index  *int `json:"index"`
			Status int  `json:"status"`
			Done   bool `json:"done"`
			OK     int  `json:"ok"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("batch line %d: %w", next, err)
		}
		if line.Done {
			sawDone = true
			if line.OK != items {
				return fmt.Errorf("batch summary ok=%d, want %d", line.OK, items)
			}
			continue
		}
		if line.Index == nil || *line.Index != next {
			return fmt.Errorf("batch line out of order: got %v, want index %d", line.Index, next)
		}
		if line.Status != http.StatusOK {
			return fmt.Errorf("batch item %d status %d, want 200", next, line.Status)
		}
		next++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if next != items || !sawDone {
		return fmt.Errorf("batch had %d items (want %d), done=%v", next, items, sawDone)
	}
	return nil
}

// post issues a POST with a JSON body, erroring on any non-200 status.
func post(client *http.Client, url, body string) ([]byte, http.Header, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, resp.Header, nil
}

// get issues a GET, erroring on any non-200 status.
func get(client *http.Client, url string) ([]byte, http.Header, error) {
	b, code, err := getStatus(client, url)
	if err != nil {
		return nil, nil, err
	}
	if code != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: status %d: %s", url, code, b)
	}
	return b, nil, nil
}

// getStatus issues a GET and returns body + status without judging it.
func getStatus(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	b, err := readAll(resp)
	if err != nil {
		return nil, 0, err
	}
	return b, resp.StatusCode, nil
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return b, err
}
