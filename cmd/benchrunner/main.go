// Command benchrunner executes the perf benchmark suite and emits a
// schema-versioned JSON report, or diffs two such reports for CI's
// regression gate (DESIGN.md §14).
//
// Run the suite and write a report:
//
//	benchrunner -out BENCH_10.json
//	benchrunner -out bench.json -short          # CI smoke iterations
//	benchrunner -out bench.json -filter n256    # subset by name
//
// Gate a fresh report against a committed baseline (exit 1 on any
// benchmark whose ns/op or allocs/op grew more than -tolerance, or on
// missing coverage):
//
//	benchrunner -compare bench.json -base BENCH_10.json
//
// Enforce a fresh report's absolute expectations (allocation caps
// always; the parallel-speedup floor when the machine has the cores):
//
//	benchrunner -out bench.json -check
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adhocgrid/internal/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	var (
		outPath   = fs.String("out", "", "write the suite report to this file (empty = stdout)")
		short     = fs.Bool("short", false, "reduced iteration counts (CI smoke)")
		iters     = fs.Int("iters", 0, "override every benchmark's iteration count (0 = suite defaults)")
		filter    = fs.String("filter", "", "comma-separated name substrings selecting a subset of the suite")
		workers   = fs.Int("workers", 0, "parallel-scorer fan-out for the *_parallel benches (0 = GOMAXPROCS)")
		compare   = fs.String("compare", "", "report to gate (skips running the suite)")
		base      = fs.String("base", "", "baseline report for -compare")
		tolerance = fs.Float64("tolerance", perf.DefaultTolerance, "relative ns/op growth allowed before failing")
		check     = fs.Bool("check", false, "after running, fail unless the report meets the alloc caps and speedup expectations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare != "" {
		return runCompare(*compare, *base, *tolerance, out)
	}
	opts := perf.Options{Iters: *iters, Short: *short, Workers: *workers}
	if *filter != "" {
		opts.Filter = strings.Split(*filter, ",")
	}
	report, err := perf.Run(opts)
	if err != nil {
		return err
	}
	if *outPath == "" {
		if err := perf.Write(out, report); err != nil {
			return err
		}
	} else {
		if err := perf.WriteFile(*outPath, report); err != nil {
			return err
		}
		//lint:errdrop best-effort status line to stdout; the report itself is on disk
		fmt.Fprintf(out, "benchrunner: wrote %d benchmarks to %s (gomaxprocs=%d)\n",
			len(report.Benchmarks), *outPath, report.GoMaxProcs)
	}
	if *check {
		verdict, cerr := perf.CheckVerdict(report)
		for _, g := range verdict.Gates {
			// A gate that could not run is not evidence; say so per gate
			// instead of printing the same line as a measured pass.
			if g.Vacuous {
				//lint:errdrop best-effort status line to stdout; exit code carries the verdict
				fmt.Fprintf(out, "benchrunner: gate %s SKIP (vacuous: %s)\n", g.Name, g.Reason)
			} else {
				//lint:errdrop best-effort status line to stdout; exit code carries the verdict
				fmt.Fprintf(out, "benchrunner: gate %s ran (%s)\n", g.Name, g.Reason)
			}
		}
		if cerr != nil {
			return cerr
		}
		if verdict.Vacuous {
			//lint:errdrop best-effort status line to stdout; exit code carries the verdict
			fmt.Fprintf(out, "benchrunner: check SKIP (vacuous: %s) — no gate could measure anything on this run\n",
				verdict.Reason)
		} else {
			//lint:errdrop best-effort status line to stdout; exit code carries the verdict
			fmt.Fprintln(out, "benchrunner: expectations met")
		}
	}
	return nil
}

// runCompare loads both reports and applies the regression gate.
func runCompare(curPath, basePath string, tolerance float64, out *os.File) error {
	if basePath == "" {
		return fmt.Errorf("-compare requires -base <baseline.json>")
	}
	cur, err := perf.ReadFile(curPath)
	if err != nil {
		return err
	}
	baseline, err := perf.ReadFile(basePath)
	if err != nil {
		return err
	}
	if _, err := perf.Compare(cur, baseline, tolerance); err != nil {
		return err
	}
	//lint:errdrop best-effort status line to stdout; exit code carries the verdict
	fmt.Fprintf(out, "benchrunner: %s within %.0f%% of %s on all %d baseline benchmarks\n",
		curPath, 100*tolerance, basePath, len(baseline.Benchmarks))
	return nil
}
