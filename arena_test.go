// Differential tests for the per-run arena (internal/core/arena.go): the
// arena must be invisible in the results — every SLRH variant must
// produce a bit-for-bit identical schedule through RunArena, on the
// first run and on every reuse of the same arena, at every shard count,
// with the plan cache on and off, and with fault plans active. The file
// runs under -race in CI, which also exercises the persistent worker
// pool's dispatch. The steady-state allocation pin at the bottom is the
// zero-alloc tentpole's unit-level gate (benchrunner -check holds the
// benchmark-level one).
package adhocgrid_test

import (
	"reflect"
	"testing"

	"adhocgrid/internal/core"
	"adhocgrid/internal/exp"
	"adhocgrid/internal/fault"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/workload"
)

// arenaRuns is how many consecutive runs each arena performs per
// configuration: the first grows the buffers, the rest prove reuse.
const arenaRuns = 3

// assertArenaTransparent runs cfg through plain Run, then arenaRuns
// times through one poolless arena and — when the config prices in
// parallel — one arena with a persistent worker pool, and fails unless
// every schedule is identical to the plain run's export.
func assertArenaTransparent(t *testing.T, inst *workload.Instance, cfg core.Config, label string) {
	t.Helper()
	want := runExport(t, inst, cfg)
	arenas := []struct {
		name    string
		workers int
	}{{"poolless", 0}}
	if cfg.ScoreWorkers > 1 || cfg.PoolWorkers > 1 {
		arenas = append(arenas, struct {
			name    string
			workers int
		}{"pooled", 2})
	}
	for _, ar := range arenas {
		a := core.NewArena(ar.workers)
		for run := 0; run < arenaRuns; run++ {
			res, err := core.RunArena(inst, cfg, a)
			if err != nil {
				a.Close()
				t.Fatalf("%s: arena %s run %d: %v", label, ar.name, run, err)
			}
			got := res.State.Export()
			if !reflect.DeepEqual(got, want) {
				a.Close()
				t.Fatalf("%s: arena %s run %d differs from plain Run\narena: mapped=%d T100=%d TEC=%g AET=%g\nplain: mapped=%d T100=%d TEC=%g AET=%g",
					label, ar.name, run,
					got.Metrics.Mapped, got.Metrics.T100, got.Metrics.TEC, got.Metrics.AETSeconds,
					want.Metrics.Mapped, want.Metrics.T100, want.Metrics.TEC, want.Metrics.AETSeconds)
			}
		}
		a.Close()
	}
}

// arenaConfigs sweeps the serial path, the parallel path at shard counts
// {1, 2, NumCPU}, and the cache-off variants of both — the same matrix
// as the parallel differential suite, with the arena bolted on.
func arenaConfigs(base core.Config) []core.Config {
	out := []core.Config{base}
	for _, shards := range shardCounts() {
		c := base
		c.PoolWorkers = shards
		c.ScoreWorkers = shards
		out = append(out, c)
	}
	for k, n := 0, len(out); k < n; k++ {
		c := out[k]
		c.DisablePlanCache = true
		out = append(out, c)
	}
	return out
}

// TestArenaDifferentialSuite proves the tentpole's acceptance criterion:
// SLRH-1/2/3 through RunArena — reused arenas included — produce
// schedules identical to plain Run on every grid case, across the
// serial/parallel and cache-on/off matrix.
func TestArenaDifferentialSuite(t *testing.T) {
	env, err := exp.NewEnv(exp.Bench())
	if err != nil {
		t.Fatal(err)
	}
	w := sched.NewWeights(0.5, 0.3)
	for _, c := range grid.AllCases {
		inst := env.Instance(c, 0, 0)
		for _, v := range []core.Variant{core.SLRH1, core.SLRH2, core.SLRH3} {
			for _, cfg := range arenaConfigs(core.DefaultConfig(v, w)) {
				assertArenaTransparent(t, inst, cfg, v.String()+"/case"+c.String())
			}
		}
	}
}

// TestArenaDifferentialFaultPlan repeats the sweep with the full fault
// surface active — a transient failure, a loss/rejoin churn pair, and a
// link-degradation window — so arena reuse is exercised across
// shrink-epoch bumps, requeues, and pricing-relevant windows.
func TestArenaDifferentialFaultPlan(t *testing.T) {
	env, err := exp.NewEnv(exp.Bench())
	if err != nil {
		t.Fatal(err)
	}
	inst := env.Instance(grid.CaseA, 0, 0)
	w := sched.NewWeights(0.5, 0.3)
	spec := "fail:t7@" + itoa(inst.TauCycles/16) +
		",lose:1@" + itoa(inst.TauCycles/8) +
		",slow:links*0.5@[" + itoa(inst.TauCycles/6) + "," + itoa(inst.TauCycles) + "]" +
		",rejoin:1@" + itoa(inst.TauCycles/4)
	pl, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []core.Variant{core.SLRH1, core.SLRH2, core.SLRH3} {
		cfg := core.DefaultConfig(v, w)
		cfg.Faults = pl
		for _, c := range arenaConfigs(cfg) {
			assertArenaTransparent(t, inst, c, v.String()+"/faultplan")
		}
	}
}

// TestArenaReuseAcrossInstances re-targets one arena at instances of
// different sizes and grid cases in both directions (grow and shrink):
// the state and cache reset paths must leave no residue.
func TestArenaReuseAcrossInstances(t *testing.T) {
	w := sched.NewWeights(0.5, 0.3)
	cfg := core.DefaultConfig(core.SLRH1, w)
	a := core.NewArena(0)
	defer a.Close()
	for _, round := range []struct {
		n int
		c grid.Case
	}{{48, grid.CaseA}, {96, grid.CaseB}, {32, grid.CaseC}, {96, grid.CaseB}, {48, grid.CaseA}} {
		s, err := workload.Generate(workload.DefaultParams(round.n), rng.New(exp.DefaultSeed))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := s.Instantiate(round.c)
		if err != nil {
			t.Fatal(err)
		}
		want := runExport(t, inst, cfg)
		res, err := core.RunArena(inst, cfg, a)
		if err != nil {
			t.Fatalf("n=%d case %v: %v", round.n, round.c, err)
		}
		if got := res.State.Export(); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d case %v: arena schedule differs from plain Run", round.n, round.c)
		}
	}
}

// TestArenaSteadyStateAllocs pins the zero-alloc tentpole at the unit
// level: after warm-up, a full SLRH run on a reused arena performs no
// steady-state heap allocations — serial and parallel-with-pool alike.
// benchrunner -check gates the same property on the recorded benchmarks.
func TestArenaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s, err := workload.Generate(workload.DefaultParams(96), rng.New(exp.DefaultSeed))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(grid.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	w := sched.NewWeights(0.5, 0.3)
	cases := []struct {
		name    string
		workers int
		cfg     func() core.Config
	}{
		{"serial_cached", 0, func() core.Config {
			return core.DefaultConfig(core.SLRH1, w)
		}},
		{"serial_uncached", 0, func() core.Config {
			cfg := core.DefaultConfig(core.SLRH1, w)
			cfg.DisablePlanCache = true
			return cfg
		}},
		{"parallel_pooled", 2, func() core.Config {
			cfg := core.DefaultConfig(core.SLRH1, w)
			cfg.PoolWorkers = 2
			cfg.ScoreWorkers = 2
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			a := core.NewArena(tc.workers)
			defer a.Close()
			op := func() {
				if _, err := core.RunArena(inst, cfg, a); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 2; i++ { // reach the buffers' high-water marks
				op()
			}
			if avg := testing.AllocsPerRun(3, op); avg > 0 {
				t.Errorf("steady-state allocs/run = %g, want 0", avg)
			}
		})
	}
}
