package adhocgrid_test

import (
	"fmt"
	"testing"

	"adhocgrid"
)

func exampleInstance(t testing.TB, n int, seed uint64, c adhocgrid.Case) *adhocgrid.Instance {
	t.Helper()
	p := adhocgrid.DefaultWorkloadParams(n)
	p.EnergyScale = 1
	scn, err := adhocgrid.GenerateScenarioWith(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scn.Instantiate(c)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPublicAPIEndToEnd(t *testing.T) {
	inst := exampleInstance(t, 96, 1, adhocgrid.CaseA)
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Complete {
		t.Fatalf("mapped %d/96", res.Metrics.Mapped)
	}
	if v := adhocgrid.Verify(res.State); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if v := adhocgrid.VerifyComplete(res.State); len(v) != 0 {
		t.Fatalf("complete violations: %v", v)
	}
}

func TestPublicMaxMaxAndLRNN(t *testing.T) {
	inst := exampleInstance(t, 96, 2, adhocgrid.CaseB)
	mm, err := adhocgrid.RunMaxMax(inst, adhocgrid.NewWeights(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Metrics.Complete {
		t.Fatalf("maxmax mapped %d/96", mm.Metrics.Mapped)
	}
	lr, err := adhocgrid.RunLRNN(inst, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Metrics.Complete {
		t.Fatalf("lrnn mapped %d/96", lr.Metrics.Mapped)
	}
}

func TestPublicUpperBound(t *testing.T) {
	inst := exampleInstance(t, 96, 3, adhocgrid.CaseC)
	b := adhocgrid.UpperBound(inst)
	if b.T100Bound <= 0 || b.T100Bound > 96 {
		t.Fatalf("bound = %d", b.T100Bound)
	}
}

func TestPublicOptimizeWeights(t *testing.T) {
	scn, err := adhocgrid.GenerateScenario(64, 5) // constrained: auto energy scale
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scn.Instantiate(adhocgrid.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adhocgrid.OptimizeWeights(func(w adhocgrid.Weights) (adhocgrid.Metrics, error) {
		r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, w)
		if err != nil {
			return adhocgrid.Metrics{}, err
		}
		return r.Metrics, nil
	}, adhocgrid.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no feasible weights")
	}
	if res.Evaluated < 66 {
		t.Fatalf("evaluated %d points", res.Evaluated)
	}
}

// TestPublicOptimizeWeightsCoarseOnly pins the FineStep < 0 off switch: a
// negative FineStep must run the coarse grid alone, even when the best
// coarse point is feasible (which would otherwise trigger refinement).
func TestPublicOptimizeWeightsCoarseOnly(t *testing.T) {
	evals := 0
	res, err := adhocgrid.OptimizeWeights(func(w adhocgrid.Weights) (adhocgrid.Metrics, error) {
		evals++
		// Always feasible, so a refinement stage would add points.
		return adhocgrid.Metrics{Complete: true, MetTau: true, Mapped: 1, T100: 1}, nil
	}, adhocgrid.SearchOptions{FineStep: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The coarse 0.1 simplex grid α, β ∈ [0,1], α+β <= 1 has 66 points.
	const coarsePoints = 66
	if res.Evaluated != coarsePoints {
		t.Fatalf("evaluated %d points, want the %d coarse points alone", res.Evaluated, coarsePoints)
	}
	if evals != coarsePoints {
		t.Fatalf("heuristic invoked %d times, want %d", evals, coarsePoints)
	}
	if !res.Found {
		t.Fatal("feasible stub not found")
	}
}

func TestPublicMachineLossRun(t *testing.T) {
	inst := exampleInstance(t, 96, 7, adhocgrid.CaseA)
	cfg := adhocgrid.DefaultConfig(adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	cfg.Events = []adhocgrid.Event{{At: inst.TauCycles / 8, Machine: 1}}
	cfg.Adaptive = adhocgrid.NewAdaptiveController(cfg.Weights)
	res, err := adhocgrid.RunSLRHConfig(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Alive(1) {
		t.Fatal("machine 1 should be lost")
	}
	if v := adhocgrid.Verify(res.State); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func ExampleRunSLRH() {
	scn, err := adhocgrid.GenerateScenario(128, 42)
	if err != nil {
		panic(err)
	}
	inst, err := scn.Instantiate(adhocgrid.CaseA)
	if err != nil {
		panic(err)
	}
	res, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("complete=%v within-tau=%v violations=%d\n",
		res.Metrics.Complete, res.Metrics.MetTau, len(adhocgrid.Verify(res.State)))
	// Output: complete=true within-tau=true violations=0
}
