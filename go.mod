module adhocgrid

go 1.22
