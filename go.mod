module adhocgrid

go 1.22

// Zero third-party dependencies, deliberately: the module must build
// and lint fully offline. The adhoclint suite (internal/lint,
// cmd/adhoclint) therefore reimplements the small slice of
// golang.org/x/tools/go/analysis it needs on the standard library
// (go/ast, go/types, go/importer + `go list -export`) instead of
// pinning x/tools here; cmd/adhoclint still speaks the unitchecker
// .cfg protocol, so `go vet -vettool` works against it unchanged.
