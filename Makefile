# Build, vet, lint and test the whole module. `make check` is the CI
# gate: the concurrent plan cache and the Optima in-flight dedup must
# stay race-clean, and the adhoclint invariant suite must report zero
# findings (determinism, float discipline, error hygiene — DESIGN.md §11).

GO ?= go

.PHONY: all build vet lint lint-fix-hints lint-json lint-vet test race check bench bench-json bench-check bench-compare fuzz serve-smoke fault-smoke admission-smoke fabric-smoke chaos-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static invariant suite (internal/lint via cmd/adhoclint): the nine
# analyzers of DESIGN.md §11/§16 — determinism (detrange, wallclock,
# floateq), error hygiene (errdrop), concurrency (lockbalance, pairwise,
# atomicmix, ctxflow) and byte purity (bytepurity) — plus the bare-
# directive check. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/adhoclint ./...

# Same gate, but each finding is followed by a one-line remediation hint.
lint-fix-hints:
	$(GO) run ./cmd/adhoclint -hints ./...

# Same gate emitting machine-readable findings (file/line/col/analyzer/
# message/hint), for editor integrations and CI annotation tooling.
lint-json:
	$(GO) run ./cmd/adhoclint -json ./...

# The same suite through `go vet -vettool`: proves the unified driver
# speaks cmd/vet's unitchecker protocol, and gives vet's per-package
# caching for incremental runs.
lint-vet:
	@mkdir -p bin
	$(GO) build -o bin/adhoclint ./cmd/adhoclint
	$(GO) vet -vettool=$(CURDIR)/bin/adhoclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# `race` covers internal/serve, so the service's admission control and
# drain paths are exercised under the race detector on every check.
check: build vet lint race

# End-to-end smoke of the slrhd service: boots on a loopback port,
# exercises map (miss + byte-identical hit), trace, health, readiness
# and metrics, then drains. No external tools (curl etc.) needed.
serve-smoke:
	$(GO) run ./cmd/slrhd -smoke

# End-to-end smoke of the cost-predictive admission path: warms the
# latency model with real runs, checks the capacity planner's answer,
# provokes a cost shed (429 + Retry-After) via an unmeetable class
# target, rejects an unknown class, and reconciles the shed/calibration
# metrics. See README.md "Service classes".
admission-smoke:
	$(GO) run ./cmd/slrhd -admission-smoke

# End-to-end smoke of the fabric tier: a slrhrouter over two in-process
# slrhd backends. Asserts byte-identical routed vs direct responses
# (the cross-fleet affinity contract), byte-identical failover after a
# backend dies, deterministic batch scatter/gather order, fleet
# capacity aggregation and the router metrics. See README.md
# "Running a fleet".
fabric-smoke:
	$(GO) run ./cmd/slrhrouter -smoke

# Chaos smoke of the hardened fabric, under the race detector: three
# in-process slrhd backends behind a deterministic fault-injecting
# transport (internal/chaos). Every fault class — drop, delay,
# blackhole, 5xx burst, slow body, connection reset — must yield either
# the byte-identical correct answer or a well-formed 503/429 with
# Retry-After; batch items degrade per-item; membership churn under
# live traffic stays invisible; zero goroutines leak. See README.md
# "Surviving failures".
chaos-smoke:
	$(GO) run -race ./cmd/slrhrouter -chaos-smoke

# Full testing.B benchmark sweep. -short skips the table/figure benches
# that regenerate whole experiments per iteration; drop it (BENCH_SHORT=)
# to run everything. See README.md "Benchmarking".
BENCH_SHORT ?= -short
bench:
	$(GO) test -run '^$$' -bench 'Benchmark.*' -benchtime 10x $(BENCH_SHORT) .

# Machine-readable perf baseline: run the perf suite and write a
# schema-versioned JSON report (ns/op, allocs/op, schedule metrics,
# derived speedups — no wall-clock timestamps). BENCH_FLAGS=-short for
# CI-smoke iteration counts.
BENCH_OUT ?= BENCH_10.json
bench-json:
	$(GO) run ./cmd/benchrunner -out $(BENCH_OUT) $(BENCH_FLAGS)

# Absolute-expectation gate: run the suite and enforce the allocation
# caps (always — the arena-backed SLRH benches must stay at zero
# allocs/op) plus the parallel-speedup floor (on ≥4-core machines).
# Prints one verdict line per gate; a gate that could not run says SKIP
# instead of passing vacuously.
bench-check:
	$(GO) run ./cmd/benchrunner -out $(BENCH_OUT) $(BENCH_FLAGS) -check

# Regression gate: compare a fresh report against a committed baseline;
# exits non-zero when any benchmark's ns/op or allocs/op grew past
# TOLERANCE, when a baseline benchmark is missing from the fresh run, or
# when the baseline records allocs_per_op and the fresh run does not
# (absence fails loudly rather than comparing against zero).
# Full-iteration runs use the strict 10% default; CI smoke passes a
# wider TOLERANCE because shared runners add double-digit run-to-run
# noise that even a min-of-iters estimator can't remove.
# Usage: make bench-compare BASE=BENCH_10.json [TOLERANCE=0.25]
BASE ?= BENCH_10.json
TOLERANCE ?= 0.10
bench-compare:
	$(GO) run ./cmd/benchrunner -compare $(BENCH_OUT) -base $(BASE) -tolerance $(TOLERANCE)

# Determinism smoke for the fault engine: one canned churn plan (loss,
# transient failure, link degradation, rejoin) run twice through
# `slrhsim -json`; the two documents must be byte-identical.
FAULT_SMOKE_PLAN = fail:t30@4000,lose:1@8000,slow:links*0.5@[9000,40000],rejoin:1@12000
fault-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/slrhsim -n 96 -seed 11 -json -faults '$(FAULT_SMOKE_PLAN)' > "$$tmp/a.json" && \
	$(GO) run ./cmd/slrhsim -n 96 -seed 11 -json -faults '$(FAULT_SMOKE_PLAN)' > "$$tmp/b.json" && \
	cmp "$$tmp/a.json" "$$tmp/b.json" && \
	grep -q '"verify_ok": true' "$$tmp/a.json" && \
	echo "fault-smoke: two faulted runs byte-identical and verified"

# Fuzz smokes: the chunked timeline against the naive reference, and the
# fault-DSL parser against its canonical re-spelling (parse/String round
# trip must reach a fixpoint).
fuzz:
	$(GO) test -fuzz FuzzTimelineVsReference -fuzztime 15s ./internal/sched/
	$(GO) test -fuzz FuzzParsePlan -fuzztime 15s ./internal/fault/
