# Build, vet and test the whole module. `make check` is the CI gate: the
# concurrent plan cache and the Optima in-flight dedup must stay race-clean.

GO ?= go

.PHONY: all build vet test race check bench fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Incremental-state speedup benchmark at Default() scale (|T|=256),
# cache on vs off; see README.md "Performance".
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSLRH$$' -benchtime 30x .

# Differential fuzzing of the chunked timeline against the naive reference.
fuzz:
	$(GO) test -fuzz FuzzTimelineVsReference -fuzztime 30s ./internal/sched/
