// Differential tests for the parallel candidate scorer: the per-timestep
// cache prefill (Config.PoolWorkers) and the per-pool concurrent scorer
// (Config.ScoreWorkers) must be invisible in the results — every SLRH
// variant must produce a bit-for-bit identical schedule at every shard
// count, with the plan cache on and off, and with fault plans active.
// The whole file runs under -race in CI, which also checks the
// read-only pricing claim behind the fan-out (DESIGN.md §14).
package adhocgrid_test

import (
	"reflect"
	"runtime"
	"testing"

	"adhocgrid/internal/core"
	"adhocgrid/internal/exp"
	"adhocgrid/internal/fault"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/workload"
)

// shardCounts returns the shard counts the differential suite sweeps:
// degenerate (1), minimal contention (2), and whatever the host offers.
func shardCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// assertParallelTransparent runs cfg serially and at every shard count
// with the cache on and off, and fails unless all schedules are
// identical to the serial export.
func assertParallelTransparent(t *testing.T, inst *workload.Instance, cfg core.Config, label string) {
	t.Helper()
	serial := cfg
	serial.PoolWorkers = 0
	serial.ScoreWorkers = 0
	want := runExport(t, inst, serial)
	for _, shards := range shardCounts() {
		for _, disable := range []bool{false, true} {
			par := cfg
			par.PoolWorkers = shards
			par.ScoreWorkers = shards
			par.DisablePlanCache = disable
			got := runExport(t, inst, par)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: shards=%d cacheOff=%v differs from serial\nparallel: mapped=%d T100=%d TEC=%g AET=%g\nserial:   mapped=%d T100=%d TEC=%g AET=%g",
					label, shards, disable,
					got.Metrics.Mapped, got.Metrics.T100, got.Metrics.TEC, got.Metrics.AETSeconds,
					want.Metrics.Mapped, want.Metrics.T100, want.Metrics.TEC, want.Metrics.AETSeconds)
			}
		}
	}
}

// TestParallelDifferentialSuite proves the tentpole's acceptance
// criterion: SLRH-1/2/3 at shard counts {1, 2, NumCPU}, with the plan
// cache enabled and disabled, produce schedules identical to the serial
// path on every grid case of the Bench() suite.
func TestParallelDifferentialSuite(t *testing.T) {
	env, err := exp.NewEnv(exp.Bench())
	if err != nil {
		t.Fatal(err)
	}
	w := sched.NewWeights(0.5, 0.3)
	for _, c := range grid.AllCases {
		inst := env.Instance(c, 0, 0)
		for _, v := range []core.Variant{core.SLRH1, core.SLRH2, core.SLRH3} {
			cfg := core.DefaultConfig(v, w)
			assertParallelTransparent(t, inst, cfg, v.String()+"/case"+c.String())
		}
	}
}

// TestParallelDifferentialFaultPlan repeats the sweep with the full
// fault surface active — a transient failure, a loss/rejoin churn pair,
// and a link-degradation window — so the prefill is exercised across
// shrink-epoch bumps and pricing-relevant windows.
func TestParallelDifferentialFaultPlan(t *testing.T) {
	env, err := exp.NewEnv(exp.Bench())
	if err != nil {
		t.Fatal(err)
	}
	inst := env.Instance(grid.CaseA, 0, 0)
	w := sched.NewWeights(0.5, 0.3)
	spec := "fail:t7@" + itoa(inst.TauCycles/16) +
		",lose:1@" + itoa(inst.TauCycles/8) +
		",slow:links*0.5@[" + itoa(inst.TauCycles/6) + "," + itoa(inst.TauCycles) + "]" +
		",rejoin:1@" + itoa(inst.TauCycles/4)
	pl, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []core.Variant{core.SLRH1, core.SLRH2, core.SLRH3} {
		cfg := core.DefaultConfig(v, w)
		cfg.Faults = pl
		assertParallelTransparent(t, inst, cfg, v.String()+"/faultplan")
	}
}

// TestParallelDifferentialArrivals checks the arrival gating under the
// prefill: a subtask released mid-run must enter the warm pools only
// once its arrival cycle passes, exactly as in the serial path.
func TestParallelDifferentialArrivals(t *testing.T) {
	p := workload.DefaultParams(96)
	p.ArrivalRate = 0.01
	s, err := workload.Generate(p, rng.New(exp.DefaultSeed))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(grid.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	w := sched.NewWeights(0.5, 0.3)
	for _, v := range []core.Variant{core.SLRH1, core.SLRH3} {
		assertParallelTransparent(t, inst, core.DefaultConfig(v, w), v.String()+"/arrivals")
	}
}

// TestParallelDifferentialDefaultScale runs one larger instance
// (|T|=256, the Default() experiment scale) through SLRH-1 to catch
// divergences that only appear once pools grow past the Bench() sizes.
func TestParallelDifferentialDefaultScale(t *testing.T) {
	p := workload.DefaultParams(256)
	s, err := workload.Generate(p, rng.New(exp.DefaultSeed))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(grid.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.SLRH1, sched.NewWeights(0.5, 0.3))
	assertParallelTransparent(t, inst, cfg, "SLRH-1/n256")
}
