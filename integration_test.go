package adhocgrid_test

import (
	"testing"

	"adhocgrid"
	"adhocgrid/internal/bound"
	"adhocgrid/internal/exp"
	"adhocgrid/internal/greedy"
	"adhocgrid/internal/grid"
	"adhocgrid/internal/lrnn"
	"adhocgrid/internal/rng"
	"adhocgrid/internal/sched"
	"adhocgrid/internal/sim"
	"adhocgrid/internal/workload"
)

// TestIntegrationAllHeuristicsAllCases is the adversarial end-to-end
// sweep: every mapper in the repository, on several seeds and every grid
// configuration, must produce a schedule that (a) passes the record-based
// verifier, (b) passes the event-driven executor, (c) never exceeds the
// §VI upper bound on T100, and (d) respects the τ guard.
func TestIntegrationAllHeuristicsAllCases(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	type runnerFn func(inst *workload.Instance) (*sched.State, sched.Metrics, error)
	w := sched.NewWeights(0.5, 0.3)
	runners := map[string]runnerFn{
		"SLRH-1": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			m, _, err := exp.RunHeuristic(exp.HeurSLRH1, inst, w)
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			// RunHeuristic discards the state; rerun through the facade
			// to keep it (deterministic, so metrics agree).
			r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, w)
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			if r.Metrics != m {
				t.Fatalf("facade and harness disagree: %+v vs %+v", r.Metrics, m)
			}
			return r.State, r.Metrics, nil
		},
		"SLRH-2": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH2, w)
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			return r.State, r.Metrics, nil
		},
		"SLRH-3": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH3, w)
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			return r.State, r.Metrics, nil
		},
		"Max-Max": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			r, err := adhocgrid.RunMaxMax(inst, sched.NewWeights(1, 0))
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			return r.State, r.Metrics, nil
		},
		"LRNN": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			r, err := lrnn.Run(inst, lrnn.DefaultConfig(w))
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			return r.State, r.Metrics, nil
		},
		"MCT": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			r, err := greedy.MCT(inst)
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			return r.State, r.Metrics, nil
		},
		"Min-Min": func(inst *workload.Instance) (*sched.State, sched.Metrics, error) {
			r, err := greedy.MinMin(inst)
			if err != nil {
				return nil, sched.Metrics{}, err
			}
			return r.State, r.Metrics, nil
		},
	}
	for seed := uint64(100); seed < 103; seed++ {
		scn, err := workload.Generate(workload.DefaultParams(96), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range grid.AllCases {
			inst, err := scn.Instantiate(c)
			if err != nil {
				t.Fatal(err)
			}
			bnd := bound.UpperBound(inst).T100Bound
			for name, run := range runners {
				st, m, err := run(inst)
				if err != nil {
					t.Fatalf("seed %d case %v %s: %v", seed, c, name, err)
				}
				if v := sim.Verify(st); len(v) != 0 {
					t.Fatalf("seed %d case %v %s: verifier: %v", seed, c, name, v)
				}
				if _, err := sim.Execute(st); err != nil {
					t.Fatalf("seed %d case %v %s: executor: %v", seed, c, name, err)
				}
				if m.T100 > bnd {
					t.Fatalf("seed %d case %v %s: T100 %d exceeds bound %d",
						seed, c, name, m.T100, bnd)
				}
				if !m.MetTau {
					t.Fatalf("seed %d case %v %s: AET %v exceeds tau (guard failed)",
						seed, c, name, m.AETSeconds)
				}
			}
		}
	}
}

// TestIntegrationSerializedScenarioReplays round-trips a scenario through
// JSON and checks the heuristic produces bit-identical metrics on the
// reloaded copy — the dataset-replay guarantee behind cmd/gendata.
func TestIntegrationSerializedScenarioReplays(t *testing.T) {
	scn, err := adhocgrid.GenerateScenario(96, 11)
	if err != nil {
		t.Fatal(err)
	}
	data, err := scn.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back adhocgrid.Scenario
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	w := adhocgrid.NewWeights(0.5, 0.3)
	instA, err := scn.Instantiate(adhocgrid.CaseB)
	if err != nil {
		t.Fatal(err)
	}
	instB, err := back.Instantiate(adhocgrid.CaseB)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := adhocgrid.RunSLRH(instA, adhocgrid.SLRH1, w)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := adhocgrid.RunSLRH(instB, adhocgrid.SLRH1, w)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Metrics != rb.Metrics {
		t.Fatalf("reloaded scenario diverged: %+v vs %+v", ra.Metrics, rb.Metrics)
	}
}
