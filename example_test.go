package adhocgrid_test

import (
	"fmt"

	"adhocgrid"
)

// ExampleUpperBound computes the §VI equivalent-computing-cycles bound
// for the three grid configurations of one scenario.
func ExampleUpperBound() {
	scn, err := adhocgrid.GenerateScenario(256, 9)
	if err != nil {
		panic(err)
	}
	for _, c := range adhocgrid.AllCases {
		inst, err := scn.Instantiate(c)
		if err != nil {
			panic(err)
		}
		b := adhocgrid.UpperBound(inst)
		fmt.Printf("case %s: bound %d (cycle-bound %v)\n", c, b.T100Bound, b.CycleBound)
	}
	// Output:
	// case A: bound 256 (cycle-bound false)
	// case B: bound 256 (cycle-bound false)
	// case C: bound 223 (cycle-bound true)
}

// ExampleOptimizeWeights runs the paper's two-stage weight search for the
// SLRH-1 heuristic on one scenario.
func ExampleOptimizeWeights() {
	scn, err := adhocgrid.GenerateScenario(96, 5)
	if err != nil {
		panic(err)
	}
	inst, err := scn.Instantiate(adhocgrid.CaseA)
	if err != nil {
		panic(err)
	}
	res, err := adhocgrid.OptimizeWeights(func(w adhocgrid.Weights) (adhocgrid.Metrics, error) {
		r, err := adhocgrid.RunSLRH(inst, adhocgrid.SLRH1, w)
		if err != nil {
			return adhocgrid.Metrics{}, err
		}
		return r.Metrics, nil
	}, adhocgrid.SearchOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("found=%v alpha=%.2f beta=%.2f T100=%d/96\n",
		res.Found, res.Best.Alpha, res.Best.Beta, res.Metrics.T100)
	// Output:
	// found=true alpha=0.70 beta=0.30 T100=76/96
}

// ExampleConfig_machineLoss injects a machine loss mid-run and lets the
// adaptive controller remap the stranded work.
func ExampleConfig_machineLoss() {
	scn, err := adhocgrid.GenerateScenario(96, 7)
	if err != nil {
		panic(err)
	}
	inst, err := scn.Instantiate(adhocgrid.CaseA)
	if err != nil {
		panic(err)
	}
	cfg := adhocgrid.DefaultConfig(adhocgrid.SLRH1, adhocgrid.NewWeights(0.5, 0.3))
	cfg.Events = []adhocgrid.Event{{At: inst.TauCycles / 8, Machine: 1}}
	cfg.Adaptive = adhocgrid.NewAdaptiveController(cfg.Weights)
	res, err := adhocgrid.RunSLRHConfig(inst, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("machine 1 alive: %v, violations: %d\n",
		res.State.Alive(1), len(adhocgrid.Verify(res.State)))
	// Output:
	// machine 1 alive: false, violations: 0
}

// ExampleRunMaxMax compares the static baseline against the upper bound.
func ExampleRunMaxMax() {
	scn, err := adhocgrid.GenerateScenario(96, 3)
	if err != nil {
		panic(err)
	}
	inst, err := scn.Instantiate(adhocgrid.CaseA)
	if err != nil {
		panic(err)
	}
	res, err := adhocgrid.RunMaxMax(inst, adhocgrid.NewWeights(1, 0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("mapped=%d violations=%d\n",
		res.Metrics.Mapped, len(adhocgrid.Verify(res.State)))
	// Output:
	// mapped=83 violations=0
}
